// The WDM network model G = (V, E) with per-link wavelength availability
// Λ(e), per-link-per-wavelength costs w(e, λ), and a per-node wavelength
// conversion cost function c_v(λ_p, λ_q).
//
// This is the input type of every routing algorithm in src/core and
// src/dist.  Construction: create with a node count, a wavelength universe
// size k, and a conversion model; then add links and their available
// wavelengths.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "wdm/conversion.h"
#include "wdm/wavelength_set.h"

namespace lumen {

/// One available wavelength on a link, with its traversal cost w(e, λ).
struct LinkWavelength {
  Wavelength lambda;
  double cost;

  friend bool operator==(const LinkWavelength&,
                         const LinkWavelength&) = default;
};

/// A directed WDM network (see file comment).  Nodes are fixed at
/// construction; links and their wavelengths are added incrementally.
class WdmNetwork {
 public:
  /// A network on `num_nodes` nodes with wavelength universe
  /// Λ = {λ_0 .. λ_{num_wavelengths-1}} and the given conversion model.
  WdmNetwork(std::uint32_t num_nodes, std::uint32_t num_wavelengths,
             std::shared_ptr<const ConversionModel> conversion);

  // --- construction ---------------------------------------------------

  /// Adds a directed link tail -> head with no wavelengths yet.
  LinkId add_link(NodeId tail, NodeId head);

  /// Makes wavelength λ available on link e at traversal cost w(e,λ) = cost.
  /// cost must be finite and ≥ 0.  Re-adding a wavelength updates its cost.
  void set_wavelength(LinkId e, Wavelength lambda, double cost);

  /// Convenience: adds a link with the given available wavelengths at once.
  LinkId add_link(NodeId tail, NodeId head,
                  std::span<const LinkWavelength> wavelengths);

  /// Removes λ from Λ(e) (e.g. a lightpath claimed it).  No-op when the
  /// wavelength was not available.  Returns true when something was
  /// removed.  Used by the online RWA session engine.
  bool clear_wavelength(LinkId e, Wavelength lambda);

  // --- topology -------------------------------------------------------

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return topology_.num_nodes();
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return topology_.num_links();
  }
  /// k: size of the wavelength universe.
  [[nodiscard]] std::uint32_t num_wavelengths() const noexcept { return k_; }

  [[nodiscard]] NodeId tail(LinkId e) const { return topology_.tail(e); }
  [[nodiscard]] NodeId head(LinkId e) const { return topology_.head(e); }
  [[nodiscard]] std::span<const LinkId> out_links(NodeId v) const {
    return topology_.out_links(v);
  }
  [[nodiscard]] std::span<const LinkId> in_links(NodeId v) const {
    return topology_.in_links(v);
  }

  /// The bare topology (unit weights), e.g. for connectivity checks.
  [[nodiscard]] const Digraph& topology() const noexcept { return topology_; }

  /// d: max over nodes of max(in-degree, out-degree).
  [[nodiscard]] std::uint32_t max_degree() const noexcept {
    return topology_.max_degree();
  }

  // --- wavelengths & costs ---------------------------------------------

  /// The available wavelengths on link e with their costs, sorted by
  /// increasing wavelength.  This is Λ(e) with w(e, ·).
  [[nodiscard]] std::span<const LinkWavelength> available(LinkId e) const;

  /// |Λ(e)|.
  [[nodiscard]] std::uint32_t num_available(LinkId e) const {
    return static_cast<std::uint32_t>(available(e).size());
  }

  /// w(e, λ): traversal cost, or kInfiniteCost when λ ∉ Λ(e).
  [[nodiscard]] double link_cost(LinkId e, Wavelength lambda) const;

  /// True when λ ∈ Λ(e).
  [[nodiscard]] bool is_available(LinkId e, Wavelength lambda) const {
    return link_cost(e, lambda) < kInfiniteCost;
  }

  /// Λ(e) as a set.
  [[nodiscard]] WavelengthSet lambda_set(LinkId e) const;

  /// Λ_in(G, v): union of Λ(e) over incoming links of v.
  [[nodiscard]] WavelengthSet lambda_in(NodeId v) const;

  /// Λ_out(G, v): union of Λ(e) over outgoing links of v.
  [[nodiscard]] WavelengthSet lambda_out(NodeId v) const;

  /// k_0: max over links of |Λ(e)| (Section IV's restriction parameter).
  [[nodiscard]] std::uint32_t k0() const noexcept;

  /// Total number of (link, wavelength) pairs: Σ_e |Λ(e)| = |E_M|.
  [[nodiscard]] std::uint64_t total_link_wavelengths() const noexcept;

  // --- conversion -------------------------------------------------------

  [[nodiscard]] const ConversionModel& conversion() const noexcept {
    return *conversion_;
  }
  [[nodiscard]] std::shared_ptr<const ConversionModel> conversion_ptr()
      const noexcept {
    return conversion_;
  }

  /// c_v(from, to).
  [[nodiscard]] double conversion_cost(NodeId v, Wavelength from,
                                       Wavelength to) const {
    LUMEN_REQUIRE(v.value() < num_nodes());
    LUMEN_REQUIRE(from.value() < k_ && to.value() < k_);
    return conversion_->cost(v, from, to);
  }

  /// Cheapest traversal cost over all wavelengths of link e
  /// (kInfiniteCost when Λ(e) is empty).  Used by lower-bound heuristics.
  [[nodiscard]] double min_link_cost(LinkId e) const;

  /// Smallest w(e,λ) over the whole network, +inf when no wavelengths.
  /// (Right-hand side of Restriction 2.)
  [[nodiscard]] double min_any_link_cost() const;

 private:
  Digraph topology_;
  std::uint32_t k_;
  std::shared_ptr<const ConversionModel> conversion_;
  /// per link: available wavelengths sorted by wavelength index
  std::vector<std::vector<LinkWavelength>> link_wavelengths_;
};

}  // namespace lumen
