// Network-state metrics: utilization and wavelength fragmentation.
//
// Operational dashboards for a WDM network.  Fragmentation matters
// because wavelength-continuity blocking is driven not by how much
// capacity is free but by how *misaligned* the free wavelengths are
// across consecutive links; the metrics below quantify that and feed the
// defragmentation pass in rwa/defragment.h.
#pragma once

#include <cstdint>

#include "wdm/network.h"

namespace lumen {

/// Aggregate occupancy/alignment metrics of a network state.
struct NetworkMetrics {
  /// Σ_e |Λ(e)| currently available.
  std::uint64_t free_pairs = 0;
  /// Links with empty Λ(e).
  std::uint32_t dead_links = 0;
  /// Mean over adjacent link pairs (e into v, e' out of v) of
  /// |Λ(e) ∩ Λ(e')| / max(1, min(|Λ(e)|, |Λ(e')|)) — the continuity
  /// alignment in [0, 1]; low values mean a wavelength-continuous path
  /// rarely exists even though capacity is free (fragmentation).
  double continuity_alignment = 1.0;
  /// Mean per-wavelength availability imbalance: population stddev of
  /// "number of links carrying λ" across λ, normalized by the mean
  /// (coefficient of variation; 0 = perfectly even).
  double wavelength_imbalance = 0.0;
};

/// Computes the metrics for the network's current availability state.
[[nodiscard]] NetworkMetrics compute_metrics(const WdmNetwork& net);

}  // namespace lumen
