// Semilightpaths: transmission paths with a wavelength chosen per link.
//
// A semilightpath P = e_1..e_l with wavelengths λ_{j_1}..λ_{j_l} has cost
//
//   C(P) = Σ_i w(e_i, λ_{j_i}) + Σ_{i<l} c_{head(e_i)}(λ_{j_i}, λ_{j_{i+1}})
//
// (Equation 1 of the paper).  A lightpath is the zero-conversion special
// case.  This type is the output of every router and the currency of the
// test oracles.
#pragma once

#include <string>
#include <vector>

#include "wdm/network.h"

namespace lumen {

/// One hop of a semilightpath: a physical link and the wavelength used on it.
struct Hop {
  LinkId link;
  Wavelength wavelength;

  friend auto operator<=>(const Hop&, const Hop&) = default;
};

/// A wavelength-conversion switch setting at an intermediate node: when the
/// signal arrives at `node` on `from`, retransmit it on `to`.
struct SwitchSetting {
  NodeId node;
  Wavelength from;
  Wavelength to;

  friend bool operator==(const SwitchSetting&, const SwitchSetting&) = default;
};

/// A semilightpath through a specific WdmNetwork.
class Semilightpath {
 public:
  Semilightpath() = default;
  explicit Semilightpath(std::vector<Hop> hops) : hops_(std::move(hops)) {}

  [[nodiscard]] const std::vector<Hop>& hops() const noexcept { return hops_; }
  [[nodiscard]] bool empty() const noexcept { return hops_.empty(); }
  [[nodiscard]] std::size_t length() const noexcept { return hops_.size(); }

  void append(Hop hop) { hops_.push_back(hop); }

  /// First node of the path.  Requires a non-empty path.
  [[nodiscard]] NodeId source(const WdmNetwork& net) const;
  /// Last node of the path.  Requires a non-empty path.
  [[nodiscard]] NodeId destination(const WdmNetwork& net) const;

  /// True iff the hops form a connected walk (head(e_i) == tail(e_{i+1}))
  /// and every hop's wavelength is available on its link.
  [[nodiscard]] bool is_valid(const WdmNetwork& net) const;

  /// C(P) per Equation (1).  Returns kInfiniteCost when the path uses an
  /// unavailable wavelength or a forbidden conversion.  Requires is_valid
  /// continuity (checked).
  [[nodiscard]] double cost(const WdmNetwork& net) const;

  /// Number of junctions where the wavelength changes.
  [[nodiscard]] std::uint32_t num_conversions() const noexcept;

  /// True when every hop uses the same wavelength (a pure lightpath).
  [[nodiscard]] bool is_lightpath() const noexcept {
    return num_conversions() == 0;
  }

  /// The switch settings at conversion junctions, in path order.
  [[nodiscard]] std::vector<SwitchSetting> switch_settings(
      const WdmNetwork& net) const;

  /// True when some node appears more than once on the walk (the Fig. 5
  /// situation that Theorem 2's restrictions rule out).  Endpoints count.
  [[nodiscard]] bool revisits_node(const WdmNetwork& net) const;

  /// Human-readable rendering, e.g. "0 -λ2-> 3 -λ2-> 5 [switch λ2→λ4] -λ4-> 6".
  [[nodiscard]] std::string to_string(const WdmNetwork& net) const;

  friend bool operator==(const Semilightpath&, const Semilightpath&) = default;

 private:
  std::vector<Hop> hops_;
};

}  // namespace lumen
