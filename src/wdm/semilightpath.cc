#include "wdm/semilightpath.h"

#include <unordered_set>

namespace lumen {

NodeId Semilightpath::source(const WdmNetwork& net) const {
  LUMEN_REQUIRE(!hops_.empty());
  return net.tail(hops_.front().link);
}

NodeId Semilightpath::destination(const WdmNetwork& net) const {
  LUMEN_REQUIRE(!hops_.empty());
  return net.head(hops_.back().link);
}

bool Semilightpath::is_valid(const WdmNetwork& net) const {
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const Hop& hop = hops_[i];
    if (hop.link.value() >= net.num_links()) return false;
    if (!net.is_available(hop.link, hop.wavelength)) return false;
    if (i + 1 < hops_.size() &&
        net.head(hop.link) != net.tail(hops_[i + 1].link)) {
      return false;
    }
  }
  return true;
}

double Semilightpath::cost(const WdmNetwork& net) const {
  double total = 0.0;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const Hop& hop = hops_[i];
    LUMEN_REQUIRE_MSG(
        i + 1 >= hops_.size() ||
            net.head(hop.link) == net.tail(hops_[i + 1].link),
        "hops must form a connected walk");
    const double w = net.link_cost(hop.link, hop.wavelength);
    if (w == kInfiniteCost) return kInfiniteCost;
    total += w;
    if (i + 1 < hops_.size()) {
      const double c =
          net.conversion_cost(net.head(hop.link), hop.wavelength,
                              hops_[i + 1].wavelength);
      if (c == kInfiniteCost) return kInfiniteCost;
      total += c;
    }
  }
  return total;
}

std::uint32_t Semilightpath::num_conversions() const noexcept {
  std::uint32_t conversions = 0;
  for (std::size_t i = 0; i + 1 < hops_.size(); ++i)
    if (hops_[i].wavelength != hops_[i + 1].wavelength) ++conversions;
  return conversions;
}

std::vector<SwitchSetting> Semilightpath::switch_settings(
    const WdmNetwork& net) const {
  std::vector<SwitchSetting> settings;
  for (std::size_t i = 0; i + 1 < hops_.size(); ++i) {
    if (hops_[i].wavelength != hops_[i + 1].wavelength) {
      settings.push_back(SwitchSetting{net.head(hops_[i].link),
                                       hops_[i].wavelength,
                                       hops_[i + 1].wavelength});
    }
  }
  return settings;
}

bool Semilightpath::revisits_node(const WdmNetwork& net) const {
  if (hops_.empty()) return false;
  std::unordered_set<NodeId> seen;
  seen.insert(source(net));
  for (const Hop& hop : hops_) {
    if (!seen.insert(net.head(hop.link)).second) return true;
  }
  return false;
}

std::string Semilightpath::to_string(const WdmNetwork& net) const {
  if (hops_.empty()) return "(empty path)";
  std::string out = std::to_string(source(net).value());
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0 && hops_[i - 1].wavelength != hops_[i].wavelength) {
      out += " [switch λ" + std::to_string(hops_[i - 1].wavelength.value()) +
             "→λ" + std::to_string(hops_[i].wavelength.value()) + "]";
    }
    out += " -λ" + std::to_string(hops_[i].wavelength.value()) + "-> " +
           std::to_string(net.head(hops_[i].link).value());
  }
  return out;
}

}  // namespace lumen
