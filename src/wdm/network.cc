#include "wdm/network.h"

#include <algorithm>
#include <cmath>

namespace lumen {

WdmNetwork::WdmNetwork(std::uint32_t num_nodes, std::uint32_t num_wavelengths,
                       std::shared_ptr<const ConversionModel> conversion)
    : topology_(num_nodes),
      k_(num_wavelengths),
      conversion_(std::move(conversion)) {
  LUMEN_REQUIRE_MSG(num_wavelengths > 0, "need at least one wavelength");
  LUMEN_REQUIRE(conversion_ != nullptr);
}

LinkId WdmNetwork::add_link(NodeId tail, NodeId head) {
  const LinkId e = topology_.add_link(tail, head, 1.0);
  link_wavelengths_.emplace_back();
  return e;
}

void WdmNetwork::set_wavelength(LinkId e, Wavelength lambda, double cost) {
  LUMEN_REQUIRE(e.value() < num_links());
  LUMEN_REQUIRE_MSG(lambda.valid() && lambda.value() < k_,
                    "wavelength outside universe");
  LUMEN_REQUIRE_MSG(cost >= 0.0 && std::isfinite(cost),
                    "available wavelengths need a finite non-negative cost");
  auto& list = link_wavelengths_[e.value()];
  const auto it = std::lower_bound(
      list.begin(), list.end(), lambda,
      [](const LinkWavelength& lw, Wavelength l) { return lw.lambda < l; });
  if (it != list.end() && it->lambda == lambda) {
    it->cost = cost;
  } else {
    list.insert(it, LinkWavelength{lambda, cost});
  }
}

bool WdmNetwork::clear_wavelength(LinkId e, Wavelength lambda) {
  LUMEN_REQUIRE(e.value() < num_links());
  LUMEN_REQUIRE_MSG(lambda.valid() && lambda.value() < k_,
                    "wavelength outside universe");
  auto& list = link_wavelengths_[e.value()];
  const auto it = std::lower_bound(
      list.begin(), list.end(), lambda,
      [](const LinkWavelength& lw, Wavelength l) { return lw.lambda < l; });
  if (it != list.end() && it->lambda == lambda) {
    list.erase(it);
    return true;
  }
  return false;
}

LinkId WdmNetwork::add_link(NodeId tail, NodeId head,
                            std::span<const LinkWavelength> wavelengths) {
  const LinkId e = add_link(tail, head);
  for (const auto& lw : wavelengths) set_wavelength(e, lw.lambda, lw.cost);
  return e;
}

std::span<const LinkWavelength> WdmNetwork::available(LinkId e) const {
  LUMEN_REQUIRE(e.value() < num_links());
  return link_wavelengths_[e.value()];
}

double WdmNetwork::link_cost(LinkId e, Wavelength lambda) const {
  LUMEN_REQUIRE(e.value() < num_links());
  LUMEN_REQUIRE(lambda.valid() && lambda.value() < k_);
  const auto& list = link_wavelengths_[e.value()];
  const auto it = std::lower_bound(
      list.begin(), list.end(), lambda,
      [](const LinkWavelength& lw, Wavelength l) { return lw.lambda < l; });
  if (it != list.end() && it->lambda == lambda) return it->cost;
  return kInfiniteCost;
}

WavelengthSet WdmNetwork::lambda_set(LinkId e) const {
  WavelengthSet set(k_);
  for (const auto& lw : available(e)) set.insert(lw.lambda);
  return set;
}

WavelengthSet WdmNetwork::lambda_in(NodeId v) const {
  LUMEN_REQUIRE(v.value() < num_nodes());
  WavelengthSet set(k_);
  for (const LinkId e : topology_.in_links(v))
    for (const auto& lw : available(e)) set.insert(lw.lambda);
  return set;
}

WavelengthSet WdmNetwork::lambda_out(NodeId v) const {
  LUMEN_REQUIRE(v.value() < num_nodes());
  WavelengthSet set(k_);
  for (const LinkId e : topology_.out_links(v))
    for (const auto& lw : available(e)) set.insert(lw.lambda);
  return set;
}

std::uint32_t WdmNetwork::k0() const noexcept {
  std::size_t best = 0;
  for (const auto& list : link_wavelengths_)
    best = std::max(best, list.size());
  return static_cast<std::uint32_t>(best);
}

std::uint64_t WdmNetwork::total_link_wavelengths() const noexcept {
  std::uint64_t total = 0;
  for (const auto& list : link_wavelengths_) total += list.size();
  return total;
}

double WdmNetwork::min_link_cost(LinkId e) const {
  double best = kInfiniteCost;
  for (const auto& lw : available(e)) best = std::min(best, lw.cost);
  return best;
}

double WdmNetwork::min_any_link_cost() const {
  double best = kInfiniteCost;
  for (std::uint32_t e = 0; e < num_links(); ++e)
    best = std::min(best, min_link_cost(LinkId{e}));
  return best;
}

}  // namespace lumen
