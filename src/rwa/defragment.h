// Wavelength defragmentation: re-optimize active sessions in place.
//
// As sessions come and go, survivors sit on routes that were optimal when
// provisioned but no longer are, and the availability pattern fragments.
// A defragmentation pass re-routes each active session against the
// current residual state (its own resources released first, so it can
// never be lost: the old route is always re-acquirable).  Sessions are
// processed most-expensive-first — the ones most likely to have a better
// route now.
#pragma once

#include <cstdint>

#include "rwa/session_manager.h"

namespace lumen {

/// Outcome of one defragmentation pass.
struct DefragReport {
  std::uint32_t considered = 0;  ///< active sessions examined
  std::uint32_t improved = 0;    ///< moved to a strictly cheaper route
  /// Σ (old cost - new cost) over improved sessions (>= 0).
  double cost_saved = 0.0;
};

/// One pass over all active sessions of `manager`.  Guarantees no session
/// is dropped and no session's cost increases.
[[nodiscard]] DefragReport defragment(SessionManager& manager);

}  // namespace lumen
