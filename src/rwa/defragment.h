// Wavelength defragmentation: re-optimize active sessions in place.
//
// As sessions come and go, survivors sit on routes that were optimal when
// provisioned but no longer are, and the availability pattern fragments.
// A defragmentation pass re-routes each active session against the
// current residual state (its own resources released first, so it can
// never be lost: the old route is always re-acquirable).  Sessions are
// processed most-expensive-first — the ones most likely to have a better
// route now.
#pragma once

#include <cstdint>

#include "rwa/session_manager.h"

namespace lumen {

/// Outcome of one defragmentation pass.
struct DefragReport {
  std::uint32_t considered = 0;  ///< active sessions examined
  std::uint32_t improved = 0;    ///< moved to a strictly cheaper route
  /// Σ (old cost - new cost) over improved sessions (>= 0).
  double cost_saved = 0.0;
};

/// How a defragmentation pass orders the active sessions.
enum class DefragOrder : std::uint8_t {
  /// Most-expensive-first (the default): the sessions with the most to
  /// gain move first, freeing contiguous resources for the rest.
  kCostliestFirst,
  /// Estimated-gain-first: a hierarchy-backed bulk cost matrix over the
  /// *current* residual state (lane-packed one-to-all sweeps, one lane
  /// per distinct session source) prices every session's best route if
  /// re-provisioned as-is; sessions sort by (current cost - matrix
  /// cost), largest estimated saving first.  The estimate ignores the
  /// resources the session itself would release, so it is conservative —
  /// but it puts provably-improvable sessions ahead of merely expensive
  /// ones.  Sessions the matrix prices at +inf sort last.
  kMatrixGain,
};

/// One pass over all active sessions of `manager`.  Guarantees no session
/// is dropped and no session's cost increases.  `route_threads` is used
/// only by kMatrixGain's bulk pre-costing (0 = one worker per hardware
/// thread); the per-session re-routes themselves stay serial either way.
[[nodiscard]] DefragReport defragment(
    SessionManager& manager, DefragOrder order = DefragOrder::kCostliestFirst,
    unsigned route_threads = 0);

}  // namespace lumen
