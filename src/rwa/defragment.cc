#include "rwa/defragment.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/route_engine.h"

namespace lumen {

DefragReport defragment(SessionManager& manager, DefragOrder order,
                        unsigned route_threads) {
  DefragReport report;
  std::vector<SessionId> ids = manager.active_session_ids();
  switch (order) {
    case DefragOrder::kCostliestFirst:
      // Most-expensive-first: those have the most to gain, and moving
      // them frees contiguous resources for the rest of the pass.
      std::sort(ids.begin(), ids.end(), [&](SessionId a, SessionId b) {
        return manager.find(a)->cost > manager.find(b)->cost;
      });
      break;
    case DefragOrder::kMatrixGain: {
      // Price every session's best route on the current residual state
      // with one bulk sweep batch (one lane per distinct source), then
      // sort by estimated saving.  The estimate is conservative (it does
      // not credit the session's own released resources), so the actual
      // re-route can only do better.
      RouteEngine::Options engine_options;
      engine_options.num_landmarks = 0;  // bulk sweeps: no goal direction
      engine_options.build_hierarchy = true;
      RouteEngine engine(manager.residual(), engine_options);
      constexpr std::uint32_t kUnseen = 0xffffffffu;
      std::vector<std::uint32_t> src_row(engine.num_nodes(), kUnseen);
      std::vector<NodeId> src_nodes;  // distinct sources, first-seen order
      for (const SessionId id : ids) {
        const NodeId s = manager.find(id)->source;
        if (src_row[s.value()] == kUnseen) {
          src_row[s.value()] = static_cast<std::uint32_t>(src_nodes.size());
          src_nodes.push_back(s);
        }
      }
      const std::vector<std::vector<double>> rows =
          engine.bulk_costs(src_nodes, route_threads);
      std::vector<double> gain(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const SessionRecord* session = manager.find(ids[i]);
        const double priced =
            rows[src_row[session->source.value()]][session->target.value()];
        gain[i] = priced == kInfiniteCost ? -kInfiniteCost
                                          : session->cost - priced;
      }
      std::vector<std::size_t> index(ids.size());
      for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
      std::stable_sort(index.begin(), index.end(),
                       [&](std::size_t a, std::size_t b) {
                         return gain[a] > gain[b];
                       });
      std::vector<SessionId> sorted;
      sorted.reserve(ids.size());
      for (const std::size_t i : index) sorted.push_back(ids[i]);
      ids = std::move(sorted);
      break;
    }
  }
  for (const SessionId id : ids) {
    const double before = manager.find(id)->cost;
    ++report.considered;
    if (manager.reoptimize(id)) {
      ++report.improved;
      report.cost_saved += before - manager.find(id)->cost;
    }
  }
  return report;
}

}  // namespace lumen
