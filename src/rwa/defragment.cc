#include "rwa/defragment.h"

#include <algorithm>

namespace lumen {

DefragReport defragment(SessionManager& manager) {
  DefragReport report;
  std::vector<SessionId> ids = manager.active_session_ids();
  // Most-expensive-first: those have the most to gain, and moving them
  // frees contiguous resources for the rest of the pass.
  std::sort(ids.begin(), ids.end(), [&](SessionId a, SessionId b) {
    return manager.find(a)->cost > manager.find(b)->cost;
  });
  for (const SessionId id : ids) {
    const double before = manager.find(id)->cost;
    ++report.considered;
    if (manager.reoptimize(id)) {
      ++report.improved;
      report.cost_saved += before - manager.find(id)->cost;
    }
  }
  return report;
}

}  // namespace lumen
