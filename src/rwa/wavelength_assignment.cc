#include "rwa/wavelength_assignment.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace lumen {

std::vector<std::vector<std::uint32_t>> build_conflict_graph(
    const std::vector<RoutedPath>& paths) {
  // Bucket paths by link, then connect all pairs within a bucket.
  std::unordered_map<LinkId, std::vector<std::uint32_t>> by_link;
  for (std::uint32_t i = 0; i < paths.size(); ++i)
    for (const LinkId e : paths[i].links) by_link[e].push_back(i);

  std::vector<std::unordered_set<std::uint32_t>> adjacency(paths.size());
  for (const auto& [link, users] : by_link) {
    for (std::size_t a = 0; a < users.size(); ++a)
      for (std::size_t b = a + 1; b < users.size(); ++b) {
        adjacency[users[a]].insert(users[b]);
        adjacency[users[b]].insert(users[a]);
      }
  }

  std::vector<std::vector<std::uint32_t>> result(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    result[i].assign(adjacency[i].begin(), adjacency[i].end());
    std::sort(result[i].begin(), result[i].end());
  }
  return result;
}

namespace {

constexpr std::uint32_t kUncolored = ~std::uint32_t{0};

/// Smallest color not used by any colored neighbor of `v`.
std::uint32_t smallest_free_color(
    const std::vector<std::vector<std::uint32_t>>& conflicts,
    const std::vector<std::uint32_t>& color, std::uint32_t v,
    std::vector<char>& scratch) {
  scratch.assign(conflicts[v].size() + 1, 0);
  for (const std::uint32_t neighbor : conflicts[v]) {
    const std::uint32_t c = color[neighbor];
    if (c != kUncolored && c < scratch.size()) scratch[c] = 1;
  }
  std::uint32_t c = 0;
  while (scratch[c]) ++c;
  return c;
}

AssignmentResult finish(std::vector<std::uint32_t> color) {
  AssignmentResult result;
  result.wavelength.reserve(color.size());
  for (const std::uint32_t c : color) {
    LUMEN_ASSERT(c != kUncolored);
    result.wavelength.push_back(Wavelength{c});
    result.wavelengths_used = std::max(result.wavelengths_used, c + 1);
  }
  return result;
}

AssignmentResult first_fit(
    const std::vector<std::vector<std::uint32_t>>& conflicts) {
  std::vector<std::uint32_t> color(conflicts.size(), kUncolored);
  std::vector<char> scratch;
  for (std::uint32_t v = 0; v < conflicts.size(); ++v)
    color[v] = smallest_free_color(conflicts, color, v, scratch);
  return finish(std::move(color));
}

AssignmentResult dsatur(
    const std::vector<std::vector<std::uint32_t>>& conflicts) {
  const auto n = static_cast<std::uint32_t>(conflicts.size());
  std::vector<std::uint32_t> color(n, kUncolored);
  std::vector<std::unordered_set<std::uint32_t>> neighbor_colors(n);
  std::vector<char> scratch;

  for (std::uint32_t step = 0; step < n; ++step) {
    // Pick the uncolored path with maximum saturation (distinct neighbor
    // colors), break ties by degree then by index (deterministic).
    std::uint32_t best = kUncolored;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (color[v] != kUncolored) continue;
      if (best == kUncolored) {
        best = v;
        continue;
      }
      const auto sat_v = neighbor_colors[v].size();
      const auto sat_b = neighbor_colors[best].size();
      if (sat_v > sat_b ||
          (sat_v == sat_b && conflicts[v].size() > conflicts[best].size())) {
        best = v;
      }
    }
    const std::uint32_t c =
        smallest_free_color(conflicts, color, best, scratch);
    color[best] = c;
    for (const std::uint32_t neighbor : conflicts[best])
      neighbor_colors[neighbor].insert(c);
  }
  return finish(std::move(color));
}

}  // namespace

AssignmentResult assign_wavelengths(const std::vector<RoutedPath>& paths,
                                    AssignmentHeuristic heuristic) {
  const auto conflicts = build_conflict_graph(paths);
  switch (heuristic) {
    case AssignmentHeuristic::kFirstFit:
      return first_fit(conflicts);
    case AssignmentHeuristic::kDsatur:
      return dsatur(conflicts);
  }
  LUMEN_ASSERT(false);
}

bool assignment_is_valid(const std::vector<RoutedPath>& paths,
                         const std::vector<Wavelength>& colors) {
  LUMEN_REQUIRE(colors.size() == paths.size());
  std::unordered_map<LinkId, std::vector<std::uint32_t>> by_link;
  for (std::uint32_t i = 0; i < paths.size(); ++i)
    for (const LinkId e : paths[i].links) by_link[e].push_back(i);
  for (const auto& [link, users] : by_link) {
    std::unordered_set<std::uint32_t> seen;
    for (const std::uint32_t path : users) {
      if (!seen.insert(colors[path].value()).second) return false;
    }
  }
  return true;
}

std::uint32_t congestion_lower_bound(const std::vector<RoutedPath>& paths) {
  std::unordered_map<LinkId, std::uint32_t> load;
  std::uint32_t best = 0;
  for (const RoutedPath& path : paths) {
    // A path crossing the same link twice still occupies one wavelength
    // per crossing... physically it cannot reuse its own wavelength on
    // the same fiber, so count multiplicity.
    for (const LinkId e : path.links) best = std::max(best, ++load[e]);
  }
  return best;
}

}  // namespace lumen
