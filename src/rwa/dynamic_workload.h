// Dynamic (Poisson) traffic driver for the RWA session engine.
//
// The standard WDM evaluation loop: sessions arrive as a Poisson process
// of rate λ_a, hold for exponential time with mean 1/μ, and depart;
// offered load is λ_a/μ Erlang.  The driver runs the event loop against a
// SessionManager and reports blocking and utilization — the curves
// bench_rwa sweeps across load and conversion density.
#pragma once

#include <cstdint>

#include "rwa/session_manager.h"
#include "util/rng.h"

namespace lumen {

/// Parameters of one dynamic-traffic run.
struct DynamicWorkloadConfig {
  /// Session arrival rate (arrivals per unit time).  Must be > 0.
  double arrival_rate = 1.0;
  /// Mean holding time (units of time).  Must be > 0.
  double mean_holding_time = 1.0;
  /// Total arrivals to offer.
  std::uint32_t num_arrivals = 1000;
  /// RNG seed (arrivals, endpoints, and holding times all derive from it).
  std::uint64_t seed = 1;

  /// Offered load in Erlang.
  [[nodiscard]] double offered_load() const noexcept {
    return arrival_rate * mean_holding_time;
  }
};

/// Outcome of a run (the manager's cumulative stats plus occupancy
/// telemetry sampled at arrival instants).
struct DynamicWorkloadResult {
  SessionStats stats;
  /// Time-average of active sessions sampled at arrival epochs.
  double mean_active_sessions = 0.0;
  /// Mean wavelength utilization sampled at arrival epochs.
  double mean_utilization = 0.0;
  /// Simulated time horizon covered.
  double horizon = 0.0;
};

/// Runs the arrival/departure event loop against `manager` (which keeps
/// its state, so successive runs continue from the left-over occupancy).
[[nodiscard]] DynamicWorkloadResult run_dynamic_workload(
    SessionManager& manager, const DynamicWorkloadConfig& config);

}  // namespace lumen
