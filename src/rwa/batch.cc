#include "rwa/batch.h"

#include <algorithm>

#include "core/route_engine.h"
#include "graph/traversal.h"
#include "util/error.h"

namespace lumen {

BatchResult provision_batch(
    SessionManager& manager,
    std::span<const std::pair<NodeId, NodeId>> demands, DemandOrder order,
    Rng* rng, unsigned route_threads) {
  std::vector<std::pair<NodeId, NodeId>> ordered(demands.begin(),
                                                 demands.end());
  switch (order) {
    case DemandOrder::kGiven:
      break;
    case DemandOrder::kShortestFirst:
    case DemandOrder::kLongestFirst: {
      // Hop distance on the base topology (availability-agnostic: the
      // heuristic ranks demand "size", not current feasibility).
      const Digraph& topo = manager.residual().topology();
      std::vector<int> hops(ordered.size());
      for (std::size_t i = 0; i < ordered.size(); ++i)
        hops[i] = bfs_hops(topo, ordered[i].first, ordered[i].second);
      std::vector<std::size_t> index(ordered.size());
      for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
      std::stable_sort(index.begin(), index.end(),
                       [&](std::size_t a, std::size_t b) {
                         return order == DemandOrder::kShortestFirst
                                    ? hops[a] < hops[b]
                                    : hops[a] > hops[b];
                       });
      std::vector<std::pair<NodeId, NodeId>> sorted;
      sorted.reserve(ordered.size());
      for (const std::size_t i : index) sorted.push_back(ordered[i]);
      ordered = std::move(sorted);
      break;
    }
    case DemandOrder::kRandom:
      LUMEN_REQUIRE_MSG(rng != nullptr, "kRandom needs an Rng");
      rng->shuffle(ordered);
      break;
    case DemandOrder::kCheapestFirst:
    case DemandOrder::kCostliestFirst: {
      // Rank by optimal semilightpath cost on the pre-batch residual
      // state.  One hierarchy-backed engine pre-costs the whole demand
      // set from lane-packed one-to-all sweeps — one sweep lane per
      // *distinct source*, each row answering every demand out of that
      // source at once, instead of one point query per demand.  Sweep
      // costs match the point queries bit-for-bit, so the ordering is
      // the one route_many would have produced.  Unroutable demands
      // (cost +inf) sort last either way, so feasible work is never
      // starved by hopeless demands.
      RouteEngine::Options engine_options;
      engine_options.num_landmarks = 0;  // bulk sweeps: no goal direction
      engine_options.build_hierarchy = true;
      RouteEngine engine(manager.residual(), engine_options);
      constexpr std::uint32_t kUnseen = 0xffffffffu;
      std::vector<std::uint32_t> src_row(engine.num_nodes(), kUnseen);
      std::vector<NodeId> src_nodes;  // distinct sources, first-seen order
      for (const auto& [s, t] : ordered) {
        (void)t;
        if (src_row[s.value()] == kUnseen) {
          src_row[s.value()] = static_cast<std::uint32_t>(src_nodes.size());
          src_nodes.push_back(s);
        }
      }
      const std::vector<std::vector<double>> rows =
          engine.bulk_costs(src_nodes, route_threads);
      std::vector<double> cost(ordered.size());
      for (std::size_t i = 0; i < ordered.size(); ++i)
        cost[i] = rows[src_row[ordered[i].first.value()]]
                      [ordered[i].second.value()];
      std::vector<std::size_t> index(ordered.size());
      for (std::size_t i = 0; i < index.size(); ++i) index[i] = i;
      std::stable_sort(index.begin(), index.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (order == DemandOrder::kCheapestFirst)
                           return cost[a] < cost[b];
                         // Costliest first, but +inf (unroutable) still last.
                         if ((cost[a] == kInfiniteCost) !=
                             (cost[b] == kInfiniteCost))
                           return cost[a] != kInfiniteCost;
                         return cost[a] > cost[b];
                       });
      std::vector<std::pair<NodeId, NodeId>> sorted;
      sorted.reserve(ordered.size());
      for (const std::size_t i : index) sorted.push_back(ordered[i]);
      ordered = std::move(sorted);
      break;
    }
  }

  BatchResult result;
  for (const auto& [s, t] : ordered) {
    const auto id = manager.open(s, t);
    if (id.has_value()) {
      ++result.carried;
      result.total_cost += manager.find(*id)->cost;
      result.sessions.push_back(*id);
    } else {
      ++result.blocked;
    }
  }
  return result;
}

}  // namespace lumen
