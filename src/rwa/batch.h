// Batch (static) provisioning: route a whole demand set through a
// SessionManager, with the classic ordering heuristics.
//
// When a demand set is known up front, the order in which demands grab
// resources changes how many fit: serving long-haul demands first tends
// to reduce blocking (short demands are easier to squeeze in afterwards).
// provision_batch runs one ordering; compare_orderings runs them all on
// identical fresh managers — the study bench_rwa's static half reports.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "rwa/session_manager.h"
#include "util/rng.h"

namespace lumen {

/// Order in which the batch's demands are offered.
enum class DemandOrder {
  kGiven,           ///< as provided
  kShortestFirst,   ///< ascending hop distance (BFS on the base topology)
  kLongestFirst,    ///< descending hop distance
  kRandom,          ///< uniformly shuffled (requires an Rng)
  kCheapestFirst,   ///< ascending optimal semilightpath cost (route engine)
  kCostliestFirst,  ///< descending optimal semilightpath cost
};

/// Outcome of one batch run.
struct BatchResult {
  std::uint32_t carried = 0;
  std::uint32_t blocked = 0;
  double total_cost = 0.0;  ///< Σ cost of carried sessions
  /// Session ids of the carried demands, in offer order.
  std::vector<SessionId> sessions;
};

/// Offers every demand to `manager` in the given order.  `rng` is used
/// only for kRandom (must be non-null then).
///
/// The cost-based orderings rank demands by their optimal semilightpath
/// cost on the manager's pre-batch residual state — one build-once,
/// hierarchy-backed RouteEngine bulk pre-costs them with lane-packed
/// one-to-all sweeps, one lane per distinct source (`route_threads`
/// workers; 0 = one per hardware thread).  Sweep costs are bit-identical
/// to the per-demand point queries, so the ordering is unchanged.
/// Demands with no route at all sort last under both.  `route_threads`
/// is ignored by the other orders.
[[nodiscard]] BatchResult provision_batch(
    SessionManager& manager,
    std::span<const std::pair<NodeId, NodeId>> demands, DemandOrder order,
    Rng* rng = nullptr, unsigned route_threads = 0);

}  // namespace lumen
