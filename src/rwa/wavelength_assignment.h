// Static wavelength assignment: coloring routed paths so that paths
// sharing a fiber link get distinct wavelengths.
//
// The complementary half of the classic RWA decomposition: routes are
// chosen first (here: any path set, e.g. shortest paths for a traffic
// matrix), then wavelengths are assigned — minimizing how many distinct
// wavelengths the network needs.  Equivalent to vertex coloring of the
// *path conflict graph* (paths adjacent iff they share a directed link),
// NP-hard in general; we provide the two standard heuristics plus the
// exact conflict-graph machinery for tests and analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// One request routed over a fixed link sequence (no wavelengths yet).
struct RoutedPath {
  std::vector<LinkId> links;
};

/// The conflict graph of a path set: node i = path i, undirected edge
/// between paths sharing at least one directed link.  Returned as an
/// adjacency list (each edge appears in both endpoint lists).
[[nodiscard]] std::vector<std::vector<std::uint32_t>> build_conflict_graph(
    const std::vector<RoutedPath>& paths);

/// Assignment heuristics.
enum class AssignmentHeuristic {
  kFirstFit,  ///< paths in given order, smallest non-conflicting wavelength
  kDsatur,    ///< highest-saturation-first (usually fewer wavelengths)
};

/// Result of a wavelength assignment.
struct AssignmentResult {
  /// wavelength[i] = color of path i (dense, 0-based).
  std::vector<Wavelength> wavelength;
  /// Number of distinct wavelengths used (the quantity to minimize).
  std::uint32_t wavelengths_used = 0;
};

/// Assigns wavelengths so conflicting paths differ.  Always succeeds (the
/// wavelength pool is unbounded); callers compare wavelengths_used to
/// their hardware budget k.
[[nodiscard]] AssignmentResult assign_wavelengths(
    const std::vector<RoutedPath>& paths,
    AssignmentHeuristic heuristic = AssignmentHeuristic::kDsatur);

/// True when the assignment gives distinct wavelengths to every pair of
/// link-sharing paths (the validity predicate tests use).
[[nodiscard]] bool assignment_is_valid(const std::vector<RoutedPath>& paths,
                                       const std::vector<Wavelength>& colors);

/// Lower bound on the wavelengths any assignment needs: the maximum
/// number of paths crossing a single directed link (link congestion).
[[nodiscard]] std::uint32_t congestion_lower_bound(
    const std::vector<RoutedPath>& paths);

}  // namespace lumen
