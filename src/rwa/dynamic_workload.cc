#include "rwa/dynamic_workload.h"

#include <cmath>
#include <queue>
#include <utility>
#include <vector>

#include "util/error.h"

namespace lumen {

namespace {

/// Exponential variate with the given mean.
double exponential(Rng& rng, double mean) {
  // -mean * ln(1 - U) with U in [0,1); 1-U in (0,1] so log is finite.
  return -mean * std::log(1.0 - rng.next_double());
}

}  // namespace

DynamicWorkloadResult run_dynamic_workload(
    SessionManager& manager, const DynamicWorkloadConfig& config) {
  LUMEN_REQUIRE(config.arrival_rate > 0.0);
  LUMEN_REQUIRE(config.mean_holding_time > 0.0);
  const std::uint32_t n = manager.residual().num_nodes();
  LUMEN_REQUIRE(n >= 2);

  Rng rng(config.seed);
  const SessionStats before = manager.stats();

  // Departure events: (time, session).
  using Departure = std::pair<double, SessionId>;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;

  DynamicWorkloadResult result;
  double now = 0.0;
  double active_sum = 0.0;
  double utilization_sum = 0.0;

  for (std::uint32_t arrival = 0; arrival < config.num_arrivals; ++arrival) {
    now += exponential(rng, 1.0 / config.arrival_rate);

    // Process departures due before this arrival.
    while (!departures.empty() && departures.top().first <= now) {
      manager.close(departures.top().second);
      departures.pop();
    }

    // Sample occupancy as seen by the arriving request (PASTA).
    active_sum += static_cast<double>(manager.active_sessions());
    utilization_sum += manager.wavelength_utilization();

    const auto s = static_cast<std::uint32_t>(rng.next_below(n));
    auto t = static_cast<std::uint32_t>(rng.next_below(n));
    while (t == s) t = static_cast<std::uint32_t>(rng.next_below(n));

    const auto session = manager.open(NodeId{s}, NodeId{t});
    if (session.has_value()) {
      departures.emplace(now + exponential(rng, config.mean_holding_time),
                         *session);
    }
  }

  // Drain remaining departures so the manager ends idle.
  while (!departures.empty()) {
    now = std::max(now, departures.top().first);
    manager.close(departures.top().second);
    departures.pop();
  }

  const SessionStats after = manager.stats();
  result.stats.offered = after.offered - before.offered;
  result.stats.carried = after.carried - before.carried;
  result.stats.blocked = after.blocked - before.blocked;
  result.stats.released = after.released - before.released;
  result.stats.carried_cost_sum =
      after.carried_cost_sum - before.carried_cost_sum;
  result.mean_active_sessions =
      active_sum / static_cast<double>(config.num_arrivals);
  result.mean_utilization =
      utilization_sum / static_cast<double>(config.num_arrivals);
  result.horizon = now;
  return result;
}

}  // namespace lumen
