#include "rwa/session_manager.h"

#include <algorithm>
#include <queue>

#include "core/liang_shen.h"
#include "graph/dijkstra.h"  // kInfiniteCost
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace lumen {

namespace {

const char* policy_name(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kLightpathFirstFit: return "first_fit";
    case RoutingPolicy::kLightpathBestCost: return "lightpath";
    case RoutingPolicy::kSemilightpath: return "semilightpath";
    case RoutingPolicy::kSemilightpathEngine: return "semilightpath_engine";
    case RoutingPolicy::kLightpathEngine: return "lightpath_engine";
    case RoutingPolicy::kGoalDirectedEngine: return "goal_directed_engine";
    case RoutingPolicy::kHierarchyEngine: return "hierarchy_engine";
  }
  return "unknown";
}

}  // namespace

SessionManager::SessionManager(WdmNetwork network, RoutingPolicy policy)
    : net_(std::move(network)),
      policy_(policy),
      base_pairs_(net_.total_link_wavelengths()),
      link_failed_(net_.num_links(), 0) {
  base_availability_.reserve(net_.num_links());
  for (std::uint32_t e = 0; e < net_.num_links(); ++e) {
    const auto list = net_.available(LinkId{e});
    base_availability_.emplace_back(list.begin(), list.end());
  }
  // Engine policies pay the flatten cost once here; afterwards every net_
  // availability change below is mirrored into the engine as an O(1)
  // weight patch, so the two views of the residual state stay equal.
  if (uses_engine()) {
    RouteEngine::Options options;
    options.build_hierarchy = policy_ == RoutingPolicy::kHierarchyEngine;
    engine_ = std::make_unique<RouteEngine>(net_, options);
  }
}

RouteResult SessionManager::first_fit_route(NodeId source,
                                            NodeId target) const {
  // Classic first-fit: BFS a hop-shortest route over links that still
  // carry at least one wavelength, then take the smallest wavelength free
  // on every link of that route.  One route attempt only.
  RouteResult result;
  result.found = false;
  result.cost = kInfiniteCost;

  std::vector<LinkId> parent(net_.num_nodes(), LinkId::invalid());
  std::vector<char> seen(net_.num_nodes(), 0);
  std::queue<NodeId> queue;
  queue.push(source);
  seen[source.value()] = 1;
  while (!queue.empty() && !seen[target.value()]) {
    const NodeId u = queue.front();
    queue.pop();
    for (const LinkId e : net_.out_links(u)) {
      if (net_.num_available(e) == 0) continue;
      const NodeId v = net_.head(e);
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        parent[v.value()] = e;
        queue.push(v);
      }
    }
  }
  if (!seen[target.value()]) return result;

  std::vector<LinkId> route;
  for (NodeId v = target; v != source;) {
    const LinkId e = parent[v.value()];
    route.push_back(e);
    v = net_.tail(e);
  }
  std::reverse(route.begin(), route.end());

  // First fit: smallest λ available on every link of the route.
  for (std::uint32_t l = 0; l < net_.num_wavelengths(); ++l) {
    const Wavelength lambda{l};
    const bool free = std::all_of(
        route.begin(), route.end(),
        [&](LinkId e) { return net_.is_available(e, lambda); });
    if (!free) continue;
    Semilightpath path;
    double cost = 0.0;
    for (const LinkId e : route) {
      path.append(Hop{e, lambda});
      cost += net_.link_cost(e, lambda);
    }
    result.found = true;
    result.cost = cost;
    result.path = std::move(path);
    return result;
  }
  return result;  // route exists but no common wavelength: blocked
}

RouteResult SessionManager::route_request(NodeId source, NodeId target) const {
  switch (policy_) {
    case RoutingPolicy::kLightpathFirstFit:
      return first_fit_route(source, target);
    case RoutingPolicy::kLightpathBestCost:
      return route_lightpath(net_, source, target);
    case RoutingPolicy::kSemilightpath:
      return route_semilightpath(net_, source, target);
    case RoutingPolicy::kSemilightpathEngine:
      return engine_->route_semilightpath(source, target);
    case RoutingPolicy::kLightpathEngine:
      return engine_->route_lightpath(source, target);
    case RoutingPolicy::kGoalDirectedEngine:
      return engine_->route_semilightpath(
          source, target, RouteEngine::QueryOptions{.goal_directed = true});
    case RoutingPolicy::kHierarchyEngine:
      // Auto-customization inside the scratch-less overload re-evaluates
      // the patched cone before the search, so this never falls back.
      return engine_->route_semilightpath(
          source, target,
          RouteEngine::QueryOptions{.goal_directed = true,
                                    .use_hierarchy = true});
  }
  LUMEN_ASSERT(false);
}

std::optional<SessionId> SessionManager::open(NodeId source, NodeId target) {
  LUMEN_REQUIRE(source.value() < net_.num_nodes());
  LUMEN_REQUIRE(target.value() < net_.num_nodes());
  LUMEN_REQUIRE_MSG(source != target, "a session needs distinct endpoints");
  ++stats_.offered;

  static obs::Counter& offered_counter =
      obs::Registry::global().counter("lumen.rwa.offered");
  static obs::Counter& carried_counter =
      obs::Registry::global().counter("lumen.rwa.carried");
  static obs::Counter& blocked_counter =
      obs::Registry::global().counter("lumen.rwa.blocked");
  static obs::LatencyHistogram& open_latency =
      obs::Registry::global().histogram("lumen.rwa.open_latency_ns");
  offered_counter.add();
  obs::TraceSpan open_span("rwa.open");
  // Ambient causal root of the request: the engine query (and, for
  // distributed policies, the whole protocol run) nests under it, and the
  // trace id is stamped onto the request's RouteEvents so the flight
  // recorder can correlate events with spans end-to-end.
  obs::CausalSpan causal_span("rwa.open");
  causal_span.set_node(source.value());
  causal_span.set_attributes(source.value(), target.value());
  current_trace_id_ = causal_span.trace_id();

  const RouteResult route = route_request(source, target);
  if (!route.found) {
    ++stats_.blocked;
    blocked_counter.add();
    open_latency.record_seconds(open_span.elapsed_seconds());
    record_event(source, target, route, "blocked");
    maybe_snapshot_metrics();
    return std::nullopt;
  }
  carried_counter.add();
  open_latency.record_seconds(open_span.elapsed_seconds());

  SessionRecord record;
  record.id = SessionId{static_cast<std::uint32_t>(next_id_++)};
  record.source = source;
  record.target = target;
  record.active = true;
  reserve(record, route);

  ++stats_.carried;
  stats_.carried_cost_sum += route.cost;
  ++active_;
  const SessionId id = record.id;
  sessions_.emplace(id, std::move(record));
  // Telemetry last, so a metrics snapshot sees the post-reservation state.
  record_event(source, target, route, "carried");
  maybe_snapshot_metrics();
  return id;
}

void SessionManager::set_telemetry(obs::RouteEventLog* events,
                                   std::uint32_t metrics_every) {
  event_log_ = events;
  metrics_every_ = metrics_every;
}

void SessionManager::record_event(NodeId source, NodeId target,
                                  const RouteResult& route,
                                  const char* outcome) {
  obs::RouteEvent event;
  event.sequence = event_sequence_++;
  event.source = source.value();
  event.target = target.value();
  event.policy = policy_name(policy_);
  if (policy_ == RoutingPolicy::kSemilightpath) event.heap = "fibonacci";
  event.outcome = outcome;
  // Documented as 0 when no route: kInfiniteCost would serialize as the
  // JSON-invalid token `inf` in the JSONL export.
  event.cost = route.found ? route.cost : 0.0;
  event.hops = static_cast<std::uint32_t>(route.path.length());
  event.conversions = route.path.num_conversions();
  event.aux_nodes = route.stats.aux_nodes;
  event.aux_links = route.stats.aux_links;
  event.relaxations = route.stats.search_relaxations;
  event.heap_pops = route.stats.search_pops;
  event.build_seconds = route.stats.build_seconds;
  event.search_seconds = route.stats.search_seconds;
  event.trace_id = current_trace_id_;
  // Every event is mirrored into the global flight recorder (a bounded
  // ring, a no-op ring under LUMEN_OBS_DISABLED) so a triggered dump
  // always holds the recent history even without an attached log.
  obs::FlightRecorder::global().record_event(event);
  if (event_log_ != nullptr) event_log_->append(std::move(event));
}

void SessionManager::update_utilization_gauges() const {
#if LUMEN_OBS_ENABLED
  static obs::Gauge& spans_busy_gauge =
      obs::Registry::global().gauge("lumen.rwa.util.spans_busy");
  static obs::Gauge& busy_ratio_gauge =
      obs::Registry::global().gauge("lumen.rwa.util.busy_ratio");
  static obs::Gauge& fragmentation_gauge =
      obs::Registry::global().gauge("lumen.rwa.util.fragmentation");

  std::uint64_t busy_links = 0;
  double ratio_sum = 0.0;
  std::uint32_t ratio_links = 0;
  double frag_sum = 0.0;
  std::uint32_t frag_links = 0;
  for (std::uint32_t ei = 0; ei < net_.num_links(); ++ei) {
    const LinkId e{ei};
    if (link_failed_[ei]) continue;  // a cut span is down, not busy
    const auto base = static_cast<std::uint32_t>(base_availability_[ei].size());
    if (base == 0) continue;
    const std::uint32_t free = net_.num_available(e);
    const std::uint32_t busy = base > free ? base - free : 0;
    if (busy > 0) ++busy_links;
    ratio_sum += static_cast<double>(busy) / static_cast<double>(base);
    ++ratio_links;
    if (free > 0) {
      // Fragmentation of this link's free spectrum: 0 when the free
      // wavelengths form one contiguous block, approaching 1 as they
      // shatter into single slots (long contiguous runs are what
      // wavelength-continuous lightpaths need).
      std::uint32_t longest = 0;
      std::uint32_t run = 0;
      for (std::uint32_t l = 0; l < net_.num_wavelengths(); ++l) {
        if (net_.is_available(e, Wavelength{l})) {
          ++run;
          longest = std::max(longest, run);
        } else {
          run = 0;
        }
      }
      frag_sum +=
          1.0 - static_cast<double>(longest) / static_cast<double>(free);
      ++frag_links;
    }
  }
  spans_busy_gauge.set(static_cast<double>(busy_links));
  busy_ratio_gauge.set(
      ratio_links == 0 ? 0.0 : ratio_sum / static_cast<double>(ratio_links));
  fragmentation_gauge.set(
      frag_links == 0 ? 0.0 : frag_sum / static_cast<double>(frag_links));
#endif  // LUMEN_OBS_ENABLED
}

void SessionManager::maybe_snapshot_metrics() {
  if (metrics_every_ == 0 || stats_.offered % metrics_every_ != 0) return;
  update_utilization_gauges();
  MetricsSnapshot snapshot;
  snapshot.offered = stats_.offered;
  snapshot.active = active_;
  snapshot.utilization = wavelength_utilization();
  snapshot.metrics = compute_metrics(net_);
  metrics_series_.push_back(snapshot);
}

void SessionManager::reserve(SessionRecord& record,
                             const RouteResult& route) {
  record.path = route.path;
  record.cost = route.cost;
  record.reserved_costs.clear();
  record.reserved_costs.reserve(route.path.hops().size());
  record.engine_handles.clear();
  for (const Hop& hop : route.path.hops()) {
    const double cost = net_.link_cost(hop.link, hop.wavelength);
    LUMEN_ASSERT(cost < kInfiniteCost);
    record.reserved_costs.push_back(LinkWavelength{hop.wavelength, cost});
    const bool removed = net_.clear_wavelength(hop.link, hop.wavelength);
    LUMEN_ASSERT(removed);
    if (engine_) {
      record.engine_handles.push_back(
          engine_->reserve(hop.link, hop.wavelength));
    }
    ++reserved_pairs_;
  }
}

void SessionManager::release_resources(SessionRecord& record) {
  const auto& hops = record.path.hops();
  for (std::size_t i = 0; i < hops.size(); ++i) {
    // A failed link's capacity stays down until the span is repaired
    // (mirrored in the engine: its weight stays +inf).
    if (!link_failed_[hops[i].link.value()]) {
      net_.set_wavelength(hops[i].link, record.reserved_costs[i].lambda,
                          record.reserved_costs[i].cost);
      if (engine_) engine_->release(record.engine_handles[i]);
    }
    --reserved_pairs_;
  }
  record.reserved_costs.clear();
  record.engine_handles.clear();
}

bool SessionManager::close(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second.active) return false;
  SessionRecord& record = it->second;
  release_resources(record);
  record.active = false;
  --active_;
  ++stats_.released;
  return true;
}

bool SessionManager::is_failed(LinkId e) const {
  LUMEN_REQUIRE(e.value() < net_.num_links());
  return link_failed_[e.value()] != 0;
}

SessionManager::FailureReport SessionManager::fail_span(NodeId a, NodeId b) {
  LUMEN_REQUIRE(a.value() < net_.num_nodes());
  LUMEN_REQUIRE(b.value() < net_.num_nodes());
  FailureReport report;

  // Causal root of the repair storm: every reroute attempt (and its
  // engine queries) nests under it, and the rerouted/dropped events carry
  // its trace id.
  obs::CausalSpan fail_span_span("rwa.fail_span");
  fail_span_span.set_node(a.value());
  fail_span_span.set_attributes(a.value(), b.value());
  current_trace_id_ = fail_span_span.trace_id();

  // 1. Take the span's links down (both directions).
  std::vector<char> failing(net_.num_links(), 0);
  for (std::uint32_t ei = 0; ei < net_.num_links(); ++ei) {
    const LinkId e{ei};
    const bool on_span = (net_.tail(e) == a && net_.head(e) == b) ||
                         (net_.tail(e) == b && net_.head(e) == a);
    if (!on_span || link_failed_[ei]) continue;
    failing[ei] = 1;
    link_failed_[ei] = 1;
    ++report.links_failed;
    // Strip any still-free wavelengths from the residual network.  The
    // engine mirrors the whole base set to +inf (idempotent for slots
    // already reserved, which are +inf already).
    for (const LinkWavelength& lw : base_availability_[ei]) {
      (void)net_.clear_wavelength(e, lw.lambda);
      if (engine_) engine_->set_weight(e, lw.lambda, kInfiniteCost);
    }
  }
  if (report.links_failed == 0) return report;

  // 2. Restore or drop the sessions that crossed it, in ascending id
  // order.  Restoration order matters (earlier sessions grab contested
  // residual capacity first); id order makes it deterministic instead of
  // an accident of the session table's hash layout.
  std::vector<SessionId> hit_ids;
  for (const auto& [id, record] : sessions_) {
    if (!record.active) continue;
    const bool hit = std::any_of(
        record.path.hops().begin(), record.path.hops().end(),
        [&](const Hop& hop) { return failing[hop.link.value()] != 0; });
    if (hit) hit_ids.push_back(id);
  }
  std::sort(hit_ids.begin(), hit_ids.end());
  for (const SessionId id : hit_ids) {
    SessionRecord& record = sessions_.find(id)->second;
    ++report.affected;
    release_resources(record);
    obs::CausalSpan reroute_span("rwa.reroute");
    reroute_span.set_node(record.source.value());
    reroute_span.set_attributes(id.value(), 0);
    const RouteResult reroute = route_request(record.source, record.target);
    if (reroute.found) {
      reserve(record, reroute);
      ++report.rerouted;
      ++stats_.rerouted;
      record_event(record.source, record.target, reroute, "rerouted");
    } else {
      record.active = false;
      --active_;
      ++report.dropped;
      ++stats_.dropped;
      record_event(record.source, record.target, reroute, "dropped");
    }
  }
  return report;
}

std::uint32_t SessionManager::repair_span(NodeId a, NodeId b) {
  LUMEN_REQUIRE(a.value() < net_.num_nodes());
  LUMEN_REQUIRE(b.value() < net_.num_nodes());

  // Early-out before any per-session work: a healthy span (or a
  // nonexistent one) must cost neither the session scan below nor a
  // single engine weight patch — span timelines replayed through
  // apply_span_state are full of such no-op transitions.
  std::vector<std::uint32_t> repairing;
  for (std::uint32_t ei = 0; ei < net_.num_links(); ++ei) {
    const LinkId e{ei};
    const bool on_span = (net_.tail(e) == a && net_.head(e) == b) ||
                         (net_.tail(e) == b && net_.head(e) == a);
    if (on_span && link_failed_[ei]) repairing.push_back(ei);
  }
  if (repairing.empty()) return 0;

  // Wavelengths still reserved by active sessions must stay unavailable.
  FlatMap<std::uint32_t, WavelengthSet> reserved;
  reserved.reserve(repairing.size());
  for (const std::uint32_t ei : repairing)
    reserved.emplace(ei, WavelengthSet(net_.num_wavelengths()));
  for (const auto& [id, record] : sessions_) {
    if (!record.active) continue;
    for (const Hop& hop : record.path.hops()) {
      const auto it = reserved.find(hop.link.value());
      if (it != reserved.end()) it->second.insert(hop.wavelength);
    }
  }

  for (const std::uint32_t ei : repairing) {
    const LinkId e{ei};
    link_failed_[ei] = 0;
    const WavelengthSet& keep_out = reserved.find(ei)->second;
    for (const LinkWavelength& lw : base_availability_[ei]) {
      if (!keep_out.contains(lw.lambda)) {
        net_.set_wavelength(e, lw.lambda, lw.cost);
        if (engine_) engine_->set_weight(e, lw.lambda, lw.cost);
      }
    }
  }
  return static_cast<std::uint32_t>(repairing.size());
}

SessionManager::FailureReport SessionManager::apply_span_state(NodeId a,
                                                               NodeId b,
                                                               bool down) {
  static obs::Counter& span_events =
      obs::Registry::global().counter("lumen.rwa.span_events");
  static obs::Counter& span_noops =
      obs::Registry::global().counter("lumen.rwa.span_noops");
  span_events.add();
  if (down) {
    const FailureReport report = fail_span(a, b);
    if (report.links_failed == 0) span_noops.add();
    return report;
  }
  if (repair_span(a, b) == 0) span_noops.add();
  return FailureReport{};
}

bool SessionManager::reoptimize(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end() || !it->second.active) return false;
  SessionRecord& record = it->second;

  // Free this session's resources so the search can reuse them...
  const Semilightpath old_path = record.path;
  const double old_cost = record.cost;
  const std::vector<LinkWavelength> old_costs = record.reserved_costs;
  release_resources(record);

  const RouteResult better = route_request(record.source, record.target);
  if (better.found && better.cost < old_cost - 1e-12) {
    reserve(record, better);
    return true;
  }

  // ...otherwise put the old route back exactly (always possible: we just
  // released it and nothing else ran in between).
  record.path = old_path;
  record.cost = old_cost;
  record.reserved_costs = old_costs;
  for (std::size_t i = 0; i < old_path.hops().size(); ++i) {
    // Re-set availability then immediately re-claim it, restoring the
    // reservation bookkeeping.
    const Hop& hop = old_path.hops()[i];
    const bool removed = net_.clear_wavelength(hop.link, hop.wavelength);
    // clear fails only if release above didn't restore it (failed link —
    // impossible for an active session's healthy route).
    LUMEN_ASSERT(removed);
    if (engine_) {
      record.engine_handles.push_back(
          engine_->reserve(hop.link, hop.wavelength));
    }
    ++reserved_pairs_;
  }
  return false;
}

std::vector<SessionId> SessionManager::active_session_ids() const {
  std::vector<SessionId> ids;
  ids.reserve(active_);
  for (const auto& [id, record] : sessions_) {
    if (record.active) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

const SessionRecord* SessionManager::find(SessionId id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

double SessionManager::wavelength_utilization() const noexcept {
  return base_pairs_ == 0 ? 0.0
                          : static_cast<double>(reserved_pairs_) /
                                static_cast<double>(base_pairs_);
}

}  // namespace lumen
