#include "rwa/placement.h"

#include <algorithm>

#include "graph/betweenness.h"
#include "util/error.h"

namespace lumen {

std::vector<NodeId> rank_converter_sites(const WdmNetwork& net,
                                         PlacementStrategy strategy) {
  const std::uint32_t n = net.num_nodes();
  std::vector<double> score(n, 0.0);
  switch (strategy) {
    case PlacementStrategy::kBetweenness:
      score = betweenness_centrality(net.topology());
      break;
    case PlacementStrategy::kDegree:
      for (std::uint32_t v = 0; v < n; ++v) {
        score[v] = std::max(net.topology().in_degree(NodeId{v}),
                            net.topology().out_degree(NodeId{v}));
      }
      break;
  }
  std::vector<NodeId> order;
  order.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) order.push_back(NodeId{v});
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (score[a.value()] != score[b.value()])
      return score[a.value()] > score[b.value()];
    return a < b;
  });
  return order;
}

std::shared_ptr<const ConversionModel> place_converters(
    const WdmNetwork& net, std::uint32_t budget,
    std::shared_ptr<const ConversionModel> inner,
    PlacementStrategy strategy) {
  LUMEN_REQUIRE(inner != nullptr);
  const auto ranked = rank_converter_sites(net, strategy);
  const auto installed =
      std::min<std::size_t>(budget, ranked.size());
  std::vector<NodeId> sites(ranked.begin(), ranked.begin() + installed);
  return std::make_shared<SparseConversion>(std::move(sites),
                                            std::move(inner));
}

}  // namespace lumen
