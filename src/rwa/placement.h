// Converter placement: choosing which nodes get wavelength converters.
//
// Sparse conversion (SparseConversion in wdm/conversion.h) asks the
// planning question this module answers: with a budget of B converter
// installations, which nodes?  The standard answer is "where traffic
// transits" — rank nodes by betweenness centrality of the physical
// topology and install top-down (bench_rwa's density ablation shows why
// this works: blocking falls steeply over the first installations).
// A degree-ranked fallback and an evaluation hook are provided so
// placements can be compared empirically on any workload.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "wdm/network.h"

namespace lumen {

/// Ranking criterion for converter sites.
enum class PlacementStrategy {
  kBetweenness,  ///< Brandes centrality of the physical topology
  kDegree,       ///< max(in, out) degree (cheap proxy)
};

/// Nodes ranked best-first as converter sites under the strategy
/// (deterministic: ties break by node id).
[[nodiscard]] std::vector<NodeId> rank_converter_sites(
    const WdmNetwork& net, PlacementStrategy strategy);

/// A SparseConversion model with converters at the `budget` best-ranked
/// sites, delegating to `inner` there.  budget >= num_nodes() degenerates
/// to `inner` everywhere.
[[nodiscard]] std::shared_ptr<const ConversionModel> place_converters(
    const WdmNetwork& net, std::uint32_t budget,
    std::shared_ptr<const ConversionModel> inner,
    PlacementStrategy strategy = PlacementStrategy::kBetweenness);

}  // namespace lumen
