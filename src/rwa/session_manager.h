// Online routing and wavelength assignment (RWA) session engine.
//
// The paper's setting: connection requests arrive online; each carried
// request claims one wavelength on every fiber link of its route (and a
// converter setting at switch nodes) until it departs.  SessionManager
// tracks the residual availability, routes each request with a pluggable
// policy, reserves/releases (link, wavelength) resources, and accounts
// blocking — the standard WDM evaluation loop built on the Liang–Shen
// router.
//
// Policies, weakest to strongest:
//   kLightpathFirstFit  — classic greedy: hop-shortest route on links with
//                         any free wavelength, then the first wavelength
//                         free along the whole route (blocked otherwise).
//   kLightpathBestCost  — optimal wavelength-continuous route (one
//                         Dijkstra per wavelength).
//   kSemilightpath      — the paper's router: optimal with conversion.
//
// The *Engine variants return the same routes as their per-request
// counterparts but amortize construction: a RouteEngine is built once per
// manager and kept in sync with the residual availability by O(1) weight
// patches on every reserve/release/failure/repair, so each request costs
// only a search.
//   kSemilightpathEngine — kSemilightpath served by the build-once engine.
//   kLightpathEngine     — kLightpathBestCost served by the engine's
//                          per-wavelength subnetwork cache.
//   kGoalDirectedEngine  — kSemilightpathEngine with goal-directed A*
//                          (ALT landmarks + per-target potential): same
//                          routes and costs, fewer heap pops per request.
//   kHierarchyEngine     — kGoalDirectedEngine over the engine's partial
//                          contraction hierarchy (bidirectional upward
//                          search, re-customized incrementally as the
//                          residual churns): same routes and costs again,
//                          fewer pops still.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/route_engine.h"
#include "core/route_types.h"
#include "obs/route_event.h"
#include "util/flat_map.h"
#include "util/strong_id.h"
#include "wdm/metrics.h"
#include "wdm/network.h"
#include "wdm/semilightpath.h"

namespace lumen {

struct SessionTag {};
/// Identifier of an accepted (possibly since-closed) session.
using SessionId = StrongId<SessionTag>;

/// Routing policy used for each arriving request.
enum class RoutingPolicy {
  kLightpathFirstFit,
  kLightpathBestCost,
  kSemilightpath,
  kSemilightpathEngine,
  kLightpathEngine,
  kGoalDirectedEngine,
  kHierarchyEngine,
};

/// One carried connection.
struct SessionRecord {
  SessionId id;
  NodeId source;
  NodeId target;
  Semilightpath path;
  double cost = 0.0;
  bool active = false;
  /// Reserved resources with their original costs (for release).
  std::vector<LinkWavelength> reserved_costs;  // parallel to path.hops()
  /// Engine patch receipts (engine policies only; parallel to path.hops()).
  std::vector<RouteEngine::ReserveHandle> engine_handles;
};

/// Aggregate acceptance accounting.
struct SessionStats {
  std::uint64_t offered = 0;
  std::uint64_t carried = 0;
  std::uint64_t blocked = 0;
  std::uint64_t released = 0;
  /// Sessions moved to a new route after a span failure.
  std::uint64_t rerouted = 0;
  /// Sessions lost to a span failure (no restoration route existed).
  std::uint64_t dropped = 0;
  double carried_cost_sum = 0.0;

  [[nodiscard]] double blocking_rate() const noexcept {
    return offered == 0 ? 0.0
                        : static_cast<double>(blocked) /
                              static_cast<double>(offered);
  }
  [[nodiscard]] double mean_carried_cost() const noexcept {
    return carried == 0 ? 0.0
                        : carried_cost_sum / static_cast<double>(carried);
  }
};

/// One point of the periodic residual-state time series recorded when
/// telemetry is attached (see SessionManager::set_telemetry).
struct MetricsSnapshot {
  /// stats().offered at sample time (the series' x-axis).
  std::uint64_t offered = 0;
  std::uint64_t active = 0;
  double utilization = 0.0;
  NetworkMetrics metrics;
};

/// Owns the residual network state and the session table.
class SessionManager {
 public:
  /// Takes the base network by value (the manager mutates its copy's
  /// availability as sessions come and go).
  SessionManager(WdmNetwork network, RoutingPolicy policy);

  /// Routes a request on the residual availability.  On success the
  /// returned session holds its resources until close().  On blocking
  /// returns std::nullopt (and counts it).
  std::optional<SessionId> open(NodeId source, NodeId target);

  /// Releases a session's resources.  Returns false when the id is
  /// unknown or already closed.
  bool close(SessionId id);

  /// Outcome of a span failure.
  struct FailureReport {
    std::uint32_t links_failed = 0;   ///< directed links taken down
    std::uint32_t affected = 0;       ///< active sessions that crossed them
    std::uint32_t rerouted = 0;       ///< restored on an alternate route
    std::uint32_t dropped = 0;        ///< lost (no restoration route)
  };

  /// Fails every directed link between `a` and `b` (a fiber cut takes the
  /// whole span).  Active sessions crossing the span are restored on an
  /// alternate route when one exists under the current policy, otherwise
  /// dropped.  Idempotent for an already-failed span.
  FailureReport fail_span(NodeId a, NodeId b);

  /// Repairs the span: its links regain every base wavelength not
  /// currently reserved by an active session.  Sessions dropped earlier
  /// are NOT resurrected.  No-op for a healthy span (detected before any
  /// per-session work or engine weight traffic).  Returns the number of
  /// directed links brought back up (0 for the no-op).
  std::uint32_t repair_span(NodeId a, NodeId b);

  /// Applies one span-state transition: down → fail_span (restoring or
  /// dropping crossing sessions), up → repair_span.  This is the replay
  /// hook for fault-injection timelines (FaultPlan::span_timeline() in
  /// src/dist emits events in exactly this shape), so simulator-level
  /// link-down windows drive the same fail/repair + engine weight-sync
  /// path as operator-initiated cuts.  Returns the failure report (empty
  /// for repairs).  Replaying a transition the span is already in (down
  /// while down, up while up) is a counted no-op: it bumps
  /// `lumen.rwa.span_noops` and performs no per-session scan and no
  /// engine weight re-sync (tests assert this via the counter).
  FailureReport apply_span_state(NodeId a, NodeId b, bool down);

  /// True when the directed link is currently failed.
  [[nodiscard]] bool is_failed(LinkId e) const;

  /// Re-routes an active session against the current residual state (its
  /// own resources are released during the search, so the old route is
  /// always re-acquirable).  Keeps the new route only when strictly
  /// cheaper; otherwise restores the old one.  Returns true when the
  /// session moved.  False (no-op) for unknown/closed ids.
  bool reoptimize(SessionId id);

  /// Ids of all currently active sessions, sorted ascending (the session
  /// table itself iterates in hash order; callers get a deterministic
  /// view regardless of table history).
  [[nodiscard]] std::vector<SessionId> active_session_ids() const;

  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t active_sessions() const noexcept {
    return active_;
  }
  /// The network as currently seen by new requests.
  [[nodiscard]] const WdmNetwork& residual() const noexcept { return net_; }
  [[nodiscard]] RoutingPolicy policy() const noexcept { return policy_; }

  /// The session record, or nullptr when unknown.
  [[nodiscard]] const SessionRecord* find(SessionId id) const;

  /// The build-once engine kept weight-synchronized with residual(), or
  /// nullptr for non-engine policies.  Exposed so tests can check the
  /// patched weights against a rebuilt-from-scratch oracle.
  [[nodiscard]] const RouteEngine* engine() const noexcept {
    return engine_.get();
  }

  /// Fraction of the base network's (link, λ) pairs currently reserved.
  [[nodiscard]] double wavelength_utilization() const noexcept;

  /// Recomputes the residual-occupancy gauges in the global registry:
  ///   lumen.rwa.util.spans_busy     — links carrying >= 1 reservation
  ///   lumen.rwa.util.busy_ratio     — mean per-link busy-λ fraction
  ///   lumen.rwa.util.fragmentation  — mean 1 - longest_free_run/free
  /// (failed links are excluded; 0 when nothing qualifies).  O(E·k), so
  /// it runs at snapshot cadence (maybe_snapshot_metrics), never per
  /// open/close; call it directly to refresh before a pump tick.  A
  /// no-op under LUMEN_OBS_DISABLED.
  void update_utilization_gauges() const;

  /// Attaches per-request event logging and (when metrics_every > 0) a
  /// NetworkMetrics snapshot of the residual state every `metrics_every`
  /// offered requests.  `events` may be null (snapshots only) and must
  /// outlive the manager; pass (nullptr, 0) to detach.  One RouteEvent is
  /// appended per offered request, plus one per reroute/drop decision
  /// made by fail_span.
  void set_telemetry(obs::RouteEventLog* events,
                     std::uint32_t metrics_every = 0);

  /// The recorded residual-state time series (empty until telemetry with
  /// metrics_every > 0 is attached).
  [[nodiscard]] const std::vector<MetricsSnapshot>& metrics_series()
      const noexcept {
    return metrics_series_;
  }

 private:
  [[nodiscard]] RouteResult route_request(NodeId source, NodeId target) const;
  [[nodiscard]] RouteResult first_fit_route(NodeId source,
                                            NodeId target) const;
  /// Reserves the hops of `route` for `record` (updates path bookkeeping).
  void reserve(SessionRecord& record, const RouteResult& route);
  /// Returns a session's resources to the pool, skipping failed links.
  void release_resources(SessionRecord& record);

  /// Appends one RouteEvent for a routing decision (no-op when no log is
  /// attached).
  void record_event(NodeId source, NodeId target, const RouteResult& route,
                    const char* outcome);
  /// Samples the residual-state metrics when the period is due.
  void maybe_snapshot_metrics();

  /// True for the build-once engine-backed policies.
  [[nodiscard]] bool uses_engine() const noexcept {
    return policy_ == RoutingPolicy::kSemilightpathEngine ||
           policy_ == RoutingPolicy::kLightpathEngine ||
           policy_ == RoutingPolicy::kGoalDirectedEngine ||
           policy_ == RoutingPolicy::kHierarchyEngine;
  }

  WdmNetwork net_;  // residual availability (mutated)
  RoutingPolicy policy_;
  /// Build-once flattened router, kept weight-synchronized with net_ (engine
  /// policies only; null otherwise).  unique_ptr keeps queries usable from
  /// const methods — route_request is logically const, the engine scratch is
  /// not part of the observable state.
  std::unique_ptr<RouteEngine> engine_;
  SessionStats stats_;
  /// Hot table: looked up on every close/reoptimize and scanned on every
  /// span failure; flat storage keeps the scan contiguous.  FlatMap moves
  /// entries on insert/erase, so never hold a SessionRecord reference
  /// across a table mutation.
  FlatMap<SessionId, SessionRecord> sessions_;
  std::uint64_t next_id_ = 0;
  std::uint64_t active_ = 0;
  std::uint64_t base_pairs_;  // Σ|Λ(e)| of the pristine network
  std::uint64_t reserved_pairs_ = 0;
  /// Pristine Λ(e) with costs, captured at construction (repair source).
  std::vector<std::vector<LinkWavelength>> base_availability_;
  std::vector<char> link_failed_;
  /// Telemetry (inert until set_telemetry is called).
  obs::RouteEventLog* event_log_ = nullptr;
  std::uint32_t metrics_every_ = 0;
  std::uint64_t event_sequence_ = 0;
  std::vector<MetricsSnapshot> metrics_series_;
  /// Causal trace of the request currently being served (open/fail_span);
  /// stamped onto its RouteEvents.  0 when tracing is compiled out.
  std::uint64_t current_trace_id_ = 0;
};

}  // namespace lumen
