// Synthetic and reference WAN topologies.
//
// The paper's setting is a large, sparse wide-area network: m = O(n) and
// bounded (or slowly growing) degree d.  Generators here produce exactly
// that regime, plus the NSFNET reference backbone for realistic examples.
// Every generator returns a Topology that is strongly connected by
// construction (bidirectional generators trivially; random generators seed
// a directed Hamiltonian cycle first).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"
#include "util/strong_id.h"

namespace lumen {

/// A bare directed topology: node count, directed links, optional planar
/// coordinates (unit square) used by distance-based cost policies.
struct Topology {
  std::uint32_t num_nodes = 0;
  std::vector<std::pair<NodeId, NodeId>> links;
  /// Either empty or one (x, y) per node.
  std::vector<std::pair<double, double>> coords;

  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(links.size());
  }

  /// Materializes the unit-weight digraph (for connectivity checks etc.).
  [[nodiscard]] Digraph to_digraph() const;

  /// Euclidean distance between the endpoints of link index `i`
  /// (requires coords; returns 1.0 when absent).
  [[nodiscard]] double link_distance(std::size_t i) const;
};

/// Bidirectional path 0 - 1 - ... - (n-1).  Requires n >= 2.
[[nodiscard]] Topology line_topology(std::uint32_t n);

/// Cycle on n nodes; bidirectional adds both directions.  Requires n >= 2
/// (n >= 3 for the unidirectional ring to be strongly connected — enforced).
[[nodiscard]] Topology ring_topology(std::uint32_t n,
                                     bool bidirectional = true);

/// Bidirectional rows×cols grid with planar coordinates.
/// Requires rows, cols >= 1 and rows*cols >= 2.
[[nodiscard]] Topology grid_topology(std::uint32_t rows, std::uint32_t cols);

/// Bidirectional rows×cols torus (wrap-around grid).  Requires rows,cols>=2.
[[nodiscard]] Topology torus_topology(std::uint32_t rows, std::uint32_t cols);

/// The 14-node, 21-span NSFNET T1 backbone (each span = 2 directed links),
/// with approximate geographic coordinates normalized to the unit square.
[[nodiscard]] Topology nsfnet_topology();

/// A 20-node, 32-span ARPANET-like continental backbone (each span = 2
/// directed links), with approximate coordinates on the unit square.  The
/// second stock reference WAN: larger and meshier than NSFNET.
[[nodiscard]] Topology arpanet_topology();

/// Random sparse strongly connected digraph: a random directed Hamiltonian
/// cycle plus `extra_links` random non-duplicate directed links.
/// Total m = n + extra_links; choose extra_links = c·n for the paper's
/// m = O(n) regime.
[[nodiscard]] Topology random_sparse_topology(std::uint32_t n,
                                              std::uint32_t extra_links,
                                              Rng& rng);

/// Waxman geometric graph on the unit square: nodes uniform at random;
/// span probability alpha·exp(-dist/(beta·L)); both directions added per
/// accepted span; a random Hamiltonian cycle guarantees strong
/// connectivity.  Classic WAN model (alpha≈0.4, beta≈0.14).
[[nodiscard]] Topology waxman_topology(std::uint32_t n, double alpha,
                                       double beta, Rng& rng);

/// Random d-out-regular digraph: every node gets exactly `d` distinct
/// random out-neighbors (no self-loops); one of them is the cycle
/// successor, guaranteeing strong connectivity.  Requires 1 <= d < n.
[[nodiscard]] Topology random_regular_topology(std::uint32_t n,
                                               std::uint32_t d, Rng& rng);

/// Hierarchical metro/backbone WAN: `hubs` backbone nodes on a
/// bidirectional ring (plus `hub_chords` random backbone chords), each
/// serving its own bidirectional access ring of `ring_size` metro nodes
/// attached to the hub at two points (ring entry/exit) for survivability.
/// Total n = hubs * (1 + ring_size).  Coordinates place hubs on a circle
/// and metro rings around them.  Requires hubs >= 3, ring_size >= 2.
[[nodiscard]] Topology hierarchical_topology(std::uint32_t hubs,
                                             std::uint32_t ring_size,
                                             std::uint32_t hub_chords,
                                             Rng& rng);

}  // namespace lumen
