// Wavelength-availability and cost workload generators.
//
// A workload assigns each directed link its available wavelength set Λ(e)
// and the per-wavelength traversal costs w(e, λ); assemble_network() then
// packages a Topology + availability + conversion model into a WdmNetwork.
// The occupancy generator reproduces the paper's motivation for sparse
// Λ(e): wavelengths already claimed by existing lightpaths are unavailable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topologies.h"
#include "util/rng.h"
#include "wdm/network.h"

namespace lumen {

/// Per-link availability lists: availability[i] belongs to topology link i.
using Availability = std::vector<std::vector<LinkWavelength>>;

/// How w(e, λ) is chosen for an available wavelength.
struct CostSpec {
  enum class Kind {
    kUnit,      ///< w = 1 everywhere
    kUniform,   ///< w ~ Uniform[lo, hi) per (link, wavelength)
    kDistance,  ///< w = scale * euclidean link length (same for all λ)
  };
  Kind kind = Kind::kUnit;
  double lo = 1.0;
  double hi = 2.0;
  double scale = 10.0;

  [[nodiscard]] static CostSpec unit() { return {}; }
  [[nodiscard]] static CostSpec uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi, 0.0};
  }
  [[nodiscard]] static CostSpec distance(double scale) {
    return {Kind::kDistance, 0.0, 0.0, scale};
  }
};

/// Every wavelength available on every link.
[[nodiscard]] Availability full_availability(const Topology& topo,
                                             std::uint32_t k,
                                             const CostSpec& costs, Rng& rng);

/// Each link gets a uniformly random subset of Λ with size drawn uniformly
/// from [k0_min, k0_max] (so k0(e) <= k0_max; the paper's Section IV
/// regime).  Requires 1 <= k0_min <= k0_max <= k.
[[nodiscard]] Availability uniform_availability(const Topology& topo,
                                                std::uint32_t k,
                                                std::uint32_t k0_min,
                                                std::uint32_t k0_max,
                                                const CostSpec& costs,
                                                Rng& rng);

/// Each link gets a contiguous band of `band` wavelengths starting at a
/// random offset (models colored/banded transceivers).  Requires
/// 1 <= band <= k.
[[nodiscard]] Availability banded_availability(const Topology& topo,
                                               std::uint32_t k,
                                               std::uint32_t band,
                                               const CostSpec& costs,
                                               Rng& rng);

/// Starts from full availability, then routes `num_demands` random
/// single-wavelength lightpath demands (shortest hop path, first-fit
/// wavelength) and removes the consumed (link, λ) pairs.  Demands that
/// cannot be carried are skipped.  Reproduces "network conditions" where
/// existing traffic blocks wavelengths.
[[nodiscard]] Availability occupancy_availability(const Topology& topo,
                                                  std::uint32_t k,
                                                  std::uint32_t num_demands,
                                                  const CostSpec& costs,
                                                  Rng& rng);

/// Packages everything into a routable WdmNetwork.
/// Requires availability.size() == topo.num_links().
[[nodiscard]] WdmNetwork assemble_network(
    const Topology& topo, std::uint32_t k, const Availability& availability,
    std::shared_ptr<const ConversionModel> conversion);

/// Random distinct (s, t) demand pairs with s != t.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> random_demands(
    std::uint32_t num_nodes, std::uint32_t count, Rng& rng);

/// Gravity-model demands: each node gets a random "population" mass
/// p_v ~ U[0.5, 2); pair (s, t) is drawn with probability proportional to
/// p_s·p_t / max(dist(s,t), d_min)² (Euclidean over topo.coords; hop = 1
/// when coords are absent, degenerating to population-weighted uniform).
/// The classic WAN traffic model: nearby large cities exchange the most.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> gravity_demands(
    const Topology& topo, std::uint32_t count, Rng& rng);

}  // namespace lumen
