#include "topo/wavelengths.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.h"

namespace lumen {

namespace {

double cost_for(const CostSpec& spec, const Topology& topo, std::size_t link,
                Rng& rng) {
  switch (spec.kind) {
    case CostSpec::Kind::kUnit:
      return 1.0;
    case CostSpec::Kind::kUniform:
      return rng.next_double_in(spec.lo, spec.hi);
    case CostSpec::Kind::kDistance:
      return spec.scale * topo.link_distance(link);
  }
  LUMEN_ASSERT(false);
}

void append_sorted(std::vector<LinkWavelength>& list, Wavelength lambda,
                   double cost) {
  list.push_back(LinkWavelength{lambda, cost});
}

void sort_by_lambda(std::vector<LinkWavelength>& list) {
  std::sort(list.begin(), list.end(),
            [](const LinkWavelength& a, const LinkWavelength& b) {
              return a.lambda < b.lambda;
            });
}

/// Shortest hop path u -> v in the topology; empty when unreachable.
std::vector<std::uint32_t> bfs_link_path(const Topology& topo,
                                         const Digraph& g, NodeId s,
                                         NodeId t) {
  (void)topo;
  std::vector<LinkId> parent(g.num_nodes(), LinkId::invalid());
  std::vector<char> seen(g.num_nodes(), 0);
  std::queue<NodeId> queue;
  queue.push(s);
  seen[s.value()] = 1;
  while (!queue.empty() && !seen[t.value()]) {
    const NodeId u = queue.front();
    queue.pop();
    for (const LinkId e : g.out_links(u)) {
      const NodeId v = g.head(e);
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        parent[v.value()] = e;
        queue.push(v);
      }
    }
  }
  std::vector<std::uint32_t> path;
  if (!seen[t.value()]) return path;
  for (NodeId v = t; v != s;) {
    const LinkId e = parent[v.value()];
    path.push_back(e.value());
    v = g.tail(e);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Availability full_availability(const Topology& topo, std::uint32_t k,
                               const CostSpec& costs, Rng& rng) {
  LUMEN_REQUIRE(k >= 1);
  Availability avail(topo.num_links());
  for (std::size_t e = 0; e < avail.size(); ++e) {
    avail[e].reserve(k);
    // kDistance draws one cost per link, the others per (link, λ).
    const double shared = cost_for(costs, topo, e, rng);
    for (std::uint32_t l = 0; l < k; ++l) {
      const double c = costs.kind == CostSpec::Kind::kUniform
                           ? cost_for(costs, topo, e, rng)
                           : shared;
      append_sorted(avail[e], Wavelength{l}, c);
    }
  }
  return avail;
}

Availability uniform_availability(const Topology& topo, std::uint32_t k,
                                  std::uint32_t k0_min, std::uint32_t k0_max,
                                  const CostSpec& costs, Rng& rng) {
  LUMEN_REQUIRE(1 <= k0_min && k0_min <= k0_max && k0_max <= k);
  Availability avail(topo.num_links());
  for (std::size_t e = 0; e < avail.size(); ++e) {
    const auto size = static_cast<std::uint32_t>(
        rng.next_in(k0_min, k0_max));
    const auto chosen = rng.sample_without_replacement(k, size);
    const double shared = cost_for(costs, topo, e, rng);
    for (const std::uint32_t l : chosen) {
      const double c = costs.kind == CostSpec::Kind::kUniform
                           ? cost_for(costs, topo, e, rng)
                           : shared;
      append_sorted(avail[e], Wavelength{l}, c);
    }
    sort_by_lambda(avail[e]);
  }
  return avail;
}

Availability banded_availability(const Topology& topo, std::uint32_t k,
                                 std::uint32_t band, const CostSpec& costs,
                                 Rng& rng) {
  LUMEN_REQUIRE(1 <= band && band <= k);
  Availability avail(topo.num_links());
  for (std::size_t e = 0; e < avail.size(); ++e) {
    const auto offset =
        static_cast<std::uint32_t>(rng.next_below(k - band + 1));
    const double shared = cost_for(costs, topo, e, rng);
    for (std::uint32_t l = offset; l < offset + band; ++l) {
      const double c = costs.kind == CostSpec::Kind::kUniform
                           ? cost_for(costs, topo, e, rng)
                           : shared;
      append_sorted(avail[e], Wavelength{l}, c);
    }
  }
  return avail;
}

Availability occupancy_availability(const Topology& topo, std::uint32_t k,
                                    std::uint32_t num_demands,
                                    const CostSpec& costs, Rng& rng) {
  Availability avail = full_availability(topo, k, costs, rng);
  if (topo.num_nodes < 2) return avail;
  const Digraph g = topo.to_digraph();

  // occupied[e] holds the λ indices consumed on link e.
  std::vector<std::vector<std::uint32_t>> occupied(topo.num_links());
  for (std::uint32_t d = 0; d < num_demands; ++d) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(topo.num_nodes));
    auto t = static_cast<std::uint32_t>(rng.next_below(topo.num_nodes));
    if (s == t) t = (t + 1) % topo.num_nodes;
    const auto path = bfs_link_path(topo, g, NodeId{s}, NodeId{t});
    if (path.empty()) continue;
    // First-fit: the smallest wavelength free on every link of the path.
    for (std::uint32_t l = 0; l < k; ++l) {
      const bool free = std::all_of(
          path.begin(), path.end(), [&](std::uint32_t e) {
            return std::find(occupied[e].begin(), occupied[e].end(), l) ==
                   occupied[e].end();
          });
      if (free) {
        for (const std::uint32_t e : path) occupied[e].push_back(l);
        break;
      }
      // All wavelengths busy on some link: the demand is blocked; skip it.
    }
  }

  for (std::size_t e = 0; e < avail.size(); ++e) {
    auto& list = avail[e];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const LinkWavelength& lw) {
                                return std::find(occupied[e].begin(),
                                                 occupied[e].end(),
                                                 lw.lambda.value()) !=
                                       occupied[e].end();
                              }),
               list.end());
  }
  return avail;
}

WdmNetwork assemble_network(const Topology& topo, std::uint32_t k,
                            const Availability& availability,
                            std::shared_ptr<const ConversionModel> conversion) {
  LUMEN_REQUIRE_MSG(availability.size() == topo.num_links(),
                    "one availability list per topology link");
  WdmNetwork net(topo.num_nodes, k, std::move(conversion));
  for (std::size_t i = 0; i < topo.links.size(); ++i) {
    const auto& [u, v] = topo.links[i];
    net.add_link(u, v, availability[i]);
  }
  return net;
}

std::vector<std::pair<NodeId, NodeId>> gravity_demands(const Topology& topo,
                                                       std::uint32_t count,
                                                       Rng& rng) {
  const std::uint32_t n = topo.num_nodes;
  LUMEN_REQUIRE(n >= 2);

  std::vector<double> population(n);
  for (auto& p : population) p = rng.next_double_in(0.5, 2.0);

  // Pair weights p_s p_t / max(dist, d_min)^2, then a cumulative table
  // for O(log) sampling.
  constexpr double kMinDistance = 0.05;  // avoid blowups for close pairs
  std::vector<double> cumulative;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  cumulative.reserve(static_cast<std::size_t>(n) * (n - 1));
  pairs.reserve(cumulative.capacity());
  double total = 0.0;
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t t = 0; t < n; ++t) {
      if (s == t) continue;
      double dist = 1.0;
      if (!topo.coords.empty()) {
        dist = std::max(kMinDistance,
                        std::hypot(topo.coords[s].first - topo.coords[t].first,
                                   topo.coords[s].second -
                                       topo.coords[t].second));
      }
      total += population[s] * population[t] / (dist * dist);
      cumulative.push_back(total);
      pairs.emplace_back(NodeId{s}, NodeId{t});
    }
  }

  std::vector<std::pair<NodeId, NodeId>> demands;
  demands.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const double pick = rng.next_double() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), pick);
    const auto index = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                 static_cast<std::ptrdiff_t>(pairs.size()) - 1));
    demands.push_back(pairs[index]);
  }
  return demands;
}

std::vector<std::pair<NodeId, NodeId>> random_demands(std::uint32_t num_nodes,
                                                      std::uint32_t count,
                                                      Rng& rng) {
  LUMEN_REQUIRE(num_nodes >= 2);
  std::vector<std::pair<NodeId, NodeId>> demands;
  demands.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.next_below(num_nodes));
    auto t = static_cast<std::uint32_t>(rng.next_below(num_nodes));
    while (t == s) t = static_cast<std::uint32_t>(rng.next_below(num_nodes));
    demands.emplace_back(NodeId{s}, NodeId{t});
  }
  return demands;
}

}  // namespace lumen
