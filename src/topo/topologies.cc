#include "topo/topologies.h"

#include <cmath>
#include <unordered_set>

#include "util/error.h"

namespace lumen {

namespace {

/// Hash key for a directed node pair (deduplication in random generators).
[[nodiscard]] std::uint64_t pair_key(std::uint32_t u, std::uint32_t v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

void add_span(Topology& topo, std::uint32_t u, std::uint32_t v) {
  topo.links.emplace_back(NodeId{u}, NodeId{v});
  topo.links.emplace_back(NodeId{v}, NodeId{u});
}

/// Adds a random directed Hamiltonian cycle; returns the permutation used.
std::vector<std::uint32_t> add_random_cycle(
    Topology& topo, Rng& rng, std::unordered_set<std::uint64_t>& used) {
  std::vector<std::uint32_t> perm(topo.num_nodes);
  for (std::uint32_t i = 0; i < topo.num_nodes; ++i) perm[i] = i;
  rng.shuffle(perm);
  for (std::uint32_t i = 0; i < topo.num_nodes; ++i) {
    const std::uint32_t u = perm[i];
    const std::uint32_t v = perm[(i + 1) % topo.num_nodes];
    topo.links.emplace_back(NodeId{u}, NodeId{v});
    used.insert(pair_key(u, v));
  }
  return perm;
}

}  // namespace

Digraph Topology::to_digraph() const {
  Digraph g(num_nodes);
  g.reserve_links(links.size());
  for (const auto& [u, v] : links) g.add_link(u, v, 1.0);
  return g;
}

double Topology::link_distance(std::size_t i) const {
  LUMEN_REQUIRE(i < links.size());
  if (coords.empty()) return 1.0;
  const auto& [u, v] = links[i];
  const auto& [ux, uy] = coords[u.value()];
  const auto& [vx, vy] = coords[v.value()];
  return std::hypot(ux - vx, uy - vy);
}

Topology line_topology(std::uint32_t n) {
  LUMEN_REQUIRE(n >= 2);
  Topology topo;
  topo.num_nodes = n;
  for (std::uint32_t i = 0; i + 1 < n; ++i) add_span(topo, i, i + 1);
  return topo;
}

Topology ring_topology(std::uint32_t n, bool bidirectional) {
  LUMEN_REQUIRE(bidirectional ? n >= 2 : n >= 3);
  Topology topo;
  topo.num_nodes = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t next = (i + 1) % n;
    topo.links.emplace_back(NodeId{i}, NodeId{next});
    if (bidirectional) topo.links.emplace_back(NodeId{next}, NodeId{i});
  }
  return topo;
}

Topology grid_topology(std::uint32_t rows, std::uint32_t cols) {
  LUMEN_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Topology topo;
  topo.num_nodes = rows * cols;
  topo.coords.resize(topo.num_nodes);
  const double dr = rows > 1 ? 1.0 / (rows - 1) : 0.0;
  const double dc = cols > 1 ? 1.0 / (cols - 1) : 0.0;
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      topo.coords[id(r, c)] = {c * dc, r * dr};
      if (c + 1 < cols) add_span(topo, id(r, c), id(r, c + 1));
      if (r + 1 < rows) add_span(topo, id(r, c), id(r + 1, c));
    }
  }
  return topo;
}

Topology torus_topology(std::uint32_t rows, std::uint32_t cols) {
  LUMEN_REQUIRE(rows >= 2 && cols >= 2);
  Topology topo;
  topo.num_nodes = rows * cols;
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      add_span(topo, id(r, c), id(r, (c + 1) % cols));
      add_span(topo, id(r, c), id((r + 1) % rows, c));
    }
  }
  return topo;
}

Topology nsfnet_topology() {
  // Nodes: 0 Seattle, 1 Palo Alto, 2 San Diego, 3 Salt Lake City,
  // 4 Boulder, 5 Houston, 6 Lincoln, 7 Champaign, 8 Ann Arbor,
  // 9 Pittsburgh, 10 Atlanta, 11 Ithaca, 12 College Park, 13 Princeton.
  Topology topo;
  topo.num_nodes = 14;
  topo.coords = {
      {0.05, 0.95}, {0.02, 0.55}, {0.08, 0.15}, {0.25, 0.60},
      {0.35, 0.55}, {0.45, 0.10}, {0.50, 0.55}, {0.62, 0.55},
      {0.70, 0.70}, {0.78, 0.55}, {0.72, 0.20}, {0.85, 0.75},
      {0.88, 0.45}, {0.95, 0.60},
  };
  // The 21 spans of the classic NSFNET T1 backbone.
  static constexpr std::pair<std::uint32_t, std::uint32_t> kSpans[] = {
      {0, 1},  {0, 3},  {0, 8},   {1, 2},  {1, 3},  {2, 5},  {3, 6},
      {4, 5},  {4, 6},  {4, 9},   {5, 10}, {6, 7},  {7, 8},  {7, 12},
      {8, 11}, {9, 11}, {9, 12},  {10, 12}, {10, 13}, {11, 13}, {12, 13},
  };
  for (const auto& [u, v] : kSpans) add_span(topo, u, v);
  return topo;
}

Topology arpanet_topology() {
  // The 20-node ARPANET-2 style backbone commonly used in optical-network
  // studies; coordinates are approximate west-to-east placements.
  Topology topo;
  topo.num_nodes = 20;
  topo.coords = {
      {0.03, 0.80}, {0.05, 0.35}, {0.12, 0.60}, {0.20, 0.20},
      {0.25, 0.75}, {0.32, 0.45}, {0.38, 0.15}, {0.45, 0.65},
      {0.50, 0.40}, {0.55, 0.85}, {0.58, 0.12}, {0.65, 0.55},
      {0.70, 0.30}, {0.75, 0.78}, {0.80, 0.10}, {0.85, 0.48},
      {0.88, 0.70}, {0.92, 0.25}, {0.95, 0.55}, {0.98, 0.82},
  };
  static constexpr std::pair<std::uint32_t, std::uint32_t> kSpans[] = {
      {0, 1},   {0, 2},   {0, 4},   {1, 2},   {1, 3},   {2, 4},
      {2, 5},   {3, 5},   {3, 6},   {4, 7},   {4, 9},   {5, 6},
      {5, 8},   {6, 10},  {7, 8},   {7, 9},   {8, 11},  {8, 12},
      {9, 13},  {10, 12}, {10, 14}, {11, 13}, {11, 15}, {12, 15},
      {12, 17}, {13, 16}, {14, 17}, {15, 16}, {15, 18}, {16, 19},
      {17, 18}, {18, 19},
  };
  for (const auto& [u, v] : kSpans) add_span(topo, u, v);
  return topo;
}

Topology random_sparse_topology(std::uint32_t n, std::uint32_t extra_links,
                                Rng& rng) {
  LUMEN_REQUIRE(n >= 2);
  // Each node has at most n-1 out-neighbors; the cycle consumes one.
  LUMEN_REQUIRE_MSG(
      static_cast<std::uint64_t>(extra_links) <=
          static_cast<std::uint64_t>(n) * (n - 1) - n,
      "too many links requested for a simple digraph");
  Topology topo;
  topo.num_nodes = n;
  std::unordered_set<std::uint64_t> used;
  used.reserve(n + extra_links);
  add_random_cycle(topo, rng, used);
  std::uint32_t added = 0;
  while (added < extra_links) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (u == v) continue;
    if (!used.insert(pair_key(u, v)).second) continue;
    topo.links.emplace_back(NodeId{u}, NodeId{v});
    ++added;
  }
  return topo;
}

Topology waxman_topology(std::uint32_t n, double alpha, double beta,
                         Rng& rng) {
  LUMEN_REQUIRE(n >= 2);
  LUMEN_REQUIRE(alpha > 0.0 && alpha <= 1.0 && beta > 0.0);
  Topology topo;
  topo.num_nodes = n;
  topo.coords.resize(n);
  for (auto& [x, y] : topo.coords) {
    x = rng.next_double();
    y = rng.next_double();
  }
  std::unordered_set<std::uint64_t> used;
  add_random_cycle(topo, rng, used);
  // Make the seed cycle bidirectional so it behaves like fiber spans.
  {
    const auto cycle_links = topo.links;  // cycle only, added above
    for (const auto& [u, v] : cycle_links) {
      if (used.insert(pair_key(v.value(), u.value())).second) {
        topo.links.emplace_back(v, u);
      }
    }
  }
  const double scale = std::sqrt(2.0);  // L: max distance on the unit square
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      const double dist = std::hypot(topo.coords[u].first - topo.coords[v].first,
                                     topo.coords[u].second - topo.coords[v].second);
      const double p = alpha * std::exp(-dist / (beta * scale));
      if (!rng.next_bool(p)) continue;
      if (used.insert(pair_key(u, v)).second)
        topo.links.emplace_back(NodeId{u}, NodeId{v});
      if (used.insert(pair_key(v, u)).second)
        topo.links.emplace_back(NodeId{v}, NodeId{u});
    }
  }
  return topo;
}

Topology random_regular_topology(std::uint32_t n, std::uint32_t d, Rng& rng) {
  LUMEN_REQUIRE(n >= 2);
  LUMEN_REQUIRE(d >= 1 && d < n);
  Topology topo;
  topo.num_nodes = n;
  std::unordered_set<std::uint64_t> used;
  const std::vector<std::uint32_t> perm = add_random_cycle(topo, rng, used);
  (void)perm;
  for (std::uint32_t u = 0; u < n; ++u) {
    std::uint32_t have = 0;
    // The cycle gave u exactly one out-link already.
    have = 1;
    while (have < d) {
      const auto v = static_cast<std::uint32_t>(rng.next_below(n));
      if (v == u) continue;
      if (!used.insert(pair_key(u, v)).second) continue;
      topo.links.emplace_back(NodeId{u}, NodeId{v});
      ++have;
    }
  }
  return topo;
}


Topology hierarchical_topology(std::uint32_t hubs, std::uint32_t ring_size,
                               std::uint32_t hub_chords, Rng& rng) {
  LUMEN_REQUIRE(hubs >= 3);
  LUMEN_REQUIRE(ring_size >= 2);
  Topology topo;
  topo.num_nodes = hubs * (1 + ring_size);
  topo.coords.resize(topo.num_nodes);

  // Node layout: hub h is node h; its metro nodes are
  // hubs + h*ring_size .. hubs + (h+1)*ring_size - 1.
  const double pi = 3.14159265358979323846;
  auto metro = [&](std::uint32_t h, std::uint32_t i) {
    return hubs + h * ring_size + i;
  };

  for (std::uint32_t h = 0; h < hubs; ++h) {
    const double angle = 2.0 * pi * h / hubs;
    const double hx = 0.5 + 0.3 * std::cos(angle);
    const double hy = 0.5 + 0.3 * std::sin(angle);
    topo.coords[h] = {hx, hy};
    for (std::uint32_t i = 0; i < ring_size; ++i) {
      const double metro_angle = 2.0 * pi * i / ring_size;
      topo.coords[metro(h, i)] = {hx + 0.08 * std::cos(metro_angle),
                                  hy + 0.08 * std::sin(metro_angle)};
    }
  }

  // Backbone ring over the hubs.
  for (std::uint32_t h = 0; h < hubs; ++h) add_span(topo, h, (h + 1) % hubs);

  // Random backbone chords (skip duplicates and ring neighbors).
  std::unordered_set<std::uint64_t> used;
  for (std::uint32_t h = 0; h < hubs; ++h) {
    used.insert(pair_key(h, (h + 1) % hubs));
    used.insert(pair_key((h + 1) % hubs, h));
  }
  std::uint32_t added = 0;
  std::uint32_t attempts = 0;
  while (added < hub_chords && attempts < 50 * (hub_chords + 1)) {
    ++attempts;
    const auto a = static_cast<std::uint32_t>(rng.next_below(hubs));
    const auto b = static_cast<std::uint32_t>(rng.next_below(hubs));
    if (a == b) continue;
    if (!used.insert(pair_key(a, b)).second) continue;
    used.insert(pair_key(b, a));
    add_span(topo, a, b);
    ++added;
  }

  // Metro rings, dual-homed onto their hub (entry at metro 0, exit at the
  // ring's midpoint) so a single span cut never isolates a metro node.
  for (std::uint32_t h = 0; h < hubs; ++h) {
    // A 2-node "ring" is a single span; larger rings close the cycle.
    const std::uint32_t ring_spans = ring_size == 2 ? 1 : ring_size;
    for (std::uint32_t i = 0; i < ring_spans; ++i)
      add_span(topo, metro(h, i), metro(h, (i + 1) % ring_size));
    add_span(topo, h, metro(h, 0));
    add_span(topo, h, metro(h, ring_size / 2));
  }
  return topo;
}

}  // namespace lumen
