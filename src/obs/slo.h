// Declarative SLO rules over registry instruments + the periodic
// MetricsPump that evaluates them.
//
// A SloRule names a threshold over an existing instrument — a counter
// value or windowed delta, a ratio of two counter deltas (blocking
// ratio), or a histogram percentile (p99 open latency).  The SloWatchdog
// evaluates its rules against a Registry and reports edge-triggered
// AlertEvents: one when a rule starts breaching, one when it resolves.
//
// MetricsPump drives it: every tick (a background thread, or synchronous
// tick() calls for deterministic tests) it samples every instrument into
// a PumpSnapshot (values + deltas since the previous tick), runs the
// watchdog, triggers a FlightRecorder dump per fresh breach, appends the
// snapshot to a JSONL sink (what `lumen_top` tails), and invokes an
// optional callback.
//
//   obs::SloWatchdog dog;
//   dog.add_rule(obs::SloRule::percentile(
//       "open-p99", "lumen.rwa.open_latency_ns", 0.99, 5e6));
//   obs::PumpOptions options;
//   options.watchdog = &dog;
//   options.recorder = &obs::FlightRecorder::global();
//   obs::MetricsPump pump(obs::Registry::global(), options);
//   pump.start();   // or pump.tick() under test control
//
// With LUMEN_OBS_DISABLED the watchdog and pump are inert no-ops (the
// registry has no instruments to evaluate).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/flat_json.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/registry.h"

namespace lumen::obs {

/// One declarative threshold rule.  Passive data (always compiled).
struct SloRule {
  enum class Kind {
    kCounterValue,        ///< counter value (windowed: delta per tick)
    kCounterRatio,        ///< metric / denominator (windowed deltas)
    kHistogramPercentile  ///< histogram percentile (lifetime)
  };
  enum class Cmp { kGreater, kLess };

  std::string name;          ///< rule id, used in alerts and dump tags
  Kind kind = Kind::kCounterValue;
  std::string metric;        ///< instrument name in the registry
  std::string denominator;   ///< kCounterRatio only
  double quantile = 0.99;    ///< kHistogramPercentile only (0..1)
  Cmp cmp = Cmp::kGreater;
  double threshold = 0.0;    ///< breach when value <cmp> threshold
  /// Counters: true compares the delta since the previous evaluation,
  /// false the lifetime value.  Ignored for percentile rules.
  bool windowed = true;

  /// `histogram.percentile(q) > threshold` (ticks).
  [[nodiscard]] static SloRule percentile(std::string name,
                                          std::string histogram, double q,
                                          double threshold) {
    SloRule r;
    r.name = std::move(name);
    r.kind = Kind::kHistogramPercentile;
    r.metric = std::move(histogram);
    r.quantile = q;
    r.threshold = threshold;
    return r;
  }
  /// `Δnumerator / Δdenominator > threshold` per evaluation window
  /// (0 when the denominator delta is 0).
  [[nodiscard]] static SloRule ratio(std::string name, std::string numerator,
                                     std::string denominator,
                                     double threshold) {
    SloRule r;
    r.name = std::move(name);
    r.kind = Kind::kCounterRatio;
    r.metric = std::move(numerator);
    r.denominator = std::move(denominator);
    r.threshold = threshold;
    return r;
  }
  /// `counter > threshold` (windowed delta by default).
  [[nodiscard]] static SloRule counter_value(std::string name,
                                             std::string counter,
                                             double threshold,
                                             bool windowed = true) {
    SloRule r;
    r.name = std::move(name);
    r.kind = Kind::kCounterValue;
    r.metric = std::move(counter);
    r.threshold = threshold;
    r.windowed = windowed;
    return r;
  }
};

/// One edge-triggered rule transition.  Passive data.
struct AlertEvent {
  std::string rule;
  std::string metric;
  double value = 0.0;
  double threshold = 0.0;
  /// false = rule started breaching; true = back within threshold.
  bool resolved = false;
  /// Pump tick the transition was observed on (0 outside a pump).
  std::uint64_t tick = 0;
  /// Flight-recorder dump written for this breach ("" when none).
  std::string dump_path;
};

/// One alert as a single-line flat JSON object (no newline).
[[nodiscard]] inline std::string alert_to_json(const AlertEvent& a) {
  std::string out = "{\"alert\":\"";
  out += detail::json_escape(a.rule);
  out += "\",\"metric\":\"";
  out += detail::json_escape(a.metric);
  out += "\",\"value\":" + detail::fmt_double_exact(a.value);
  out += ",\"threshold\":" + detail::fmt_double_exact(a.threshold);
  out += ",\"resolved\":";
  out += a.resolved ? "true" : "false";
  out += ",\"tick\":" + std::to_string(a.tick);
  out += ",\"dump_path\":\"";
  out += detail::json_escape(a.dump_path);
  out += "\"}";
  return out;
}

/// One labeled counter child at sample time.  `labels` uses the
/// canonical TagSet rendering ("tenant=3,shard=1" — see obs/tagset.h).
/// Passive data, shared by both build modes.
struct LabeledCounterSample {
  std::string name;
  std::string labels;
  std::uint64_t value = 0;
  std::uint64_t delta = 0;

  friend bool operator==(const LabeledCounterSample&,
                         const LabeledCounterSample&) = default;
};

/// One labeled gauge child at sample time.  Passive data.
struct LabeledGaugeSample {
  std::string name;
  std::string labels;
  double value = 0.0;

  friend bool operator==(const LabeledGaugeSample&,
                         const LabeledGaugeSample&) = default;
};

/// One labeled histogram child at sample time, plus the exemplar
/// trace_id of its worst populated latency bucket (0 = none).  Passive.
struct LabeledHistogramSample {
  std::string name;
  std::string labels;
  HistogramSummary summary;
  std::uint64_t exemplar = 0;

  friend bool operator==(const LabeledHistogramSample&,
                         const LabeledHistogramSample&) = default;
};

/// One periodic sample of every registry instrument.  Passive data,
/// shared by both build modes: the wire codec (obs/wire) moves these
/// across process boundaries, so the struct must not depend on whether
/// the producing or consuming binary compiled the instruments in.
struct PumpSnapshot {
  std::uint64_t tick = 0;
  double uptime_seconds = 0.0;
  /// (name, lifetime value), sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// (name, delta since previous tick), parallel to `counters`.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  /// (name, current level), sorted by name.
  std::vector<std::pair<std::string, double>> gauges;
  /// (name, summary), sorted by name.
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
  /// Labeled children (per-tenant/per-shard/per-stage series), sorted
  /// by (name, labels).
  std::vector<LabeledCounterSample> labeled_counters;
  std::vector<LabeledGaugeSample> labeled_gauges;
  std::vector<LabeledHistogramSample> labeled_histograms;
  /// Stage profile at this tick (empty without a pump profiler).
  std::vector<ProfileEntry> profile;
  /// Watchdog transitions observed on this tick.
  std::vector<AlertEvent> alerts;
};

/// One snapshot as a single-line flat JSON object (no newline): keys are
/// "tick", "uptime_seconds", "c:<counter>" (value), "d:<counter>"
/// (delta), "g:<gauge>" (level), and
/// "h:<histogram>:{count,mean,p50,p90,p99,max}".  Labeled children use
/// the same prefixes with the labels appended in braces —
/// "c:<name>{tenant=3}", "h:<name>{tenant=3}:p99", plus ":exemplar" for
/// labeled histograms — and profile entries render as
/// "p:<stack>:{n,self,total}".  Alerts are NOT inlined — the pump
/// writes them as separate alert_to_json lines.
[[nodiscard]] std::string pump_snapshot_to_json(const PumpSnapshot& snapshot);

namespace wire {
/// Binary wire egress for snapshots (obs/wire/wire_encoder.h); referenced
/// by PumpOptions in both build modes.
class WireExporter;
}  // namespace wire

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

namespace lumen::obs {
inline namespace enabled {

/// Evaluates SLO rules against a registry; breach state is kept per rule
/// so alerts fire only on transitions.  Thread-safe.
class SloWatchdog {
 public:
  SloWatchdog() = default;
  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  void add_rule(SloRule rule);
  [[nodiscard]] std::size_t num_rules() const;

  /// One evaluation pass; windowed counter rules measure the delta since
  /// the previous evaluate() call.  Returns the transitions (alerts'
  /// `tick` is 0 — the pump stamps it).
  [[nodiscard]] std::vector<AlertEvent> evaluate(
      const Registry& registry = Registry::global());

  /// Current breach state of `rule` (false for unknown rules).
  [[nodiscard]] bool breaching(const std::string& rule) const;

 private:
  struct RuleState {
    SloRule rule;
    bool breaching = false;
    bool primed = false;  // windowed rules skip their first window
    std::uint64_t prev_metric = 0;
    std::uint64_t prev_denominator = 0;
  };

  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
};

class MetricsPump;

/// MetricsPump configuration.  Referenced objects must outlive the pump.
struct PumpOptions {
  /// Background-thread tick period (start()); irrelevant under manual
  /// tick() control.
  double interval_seconds = 1.0;
  /// JSONL sink appended with one snapshot line (plus alert lines) per
  /// tick; "" = no sink.  This is the stream `lumen_top` tails.
  std::string snapshot_path;
  /// Rules to evaluate each tick (nullptr = none).
  SloWatchdog* watchdog = nullptr;
  /// Dump target for fresh breaches (nullptr = no dumps).
  FlightRecorder* recorder = nullptr;
  /// Directory trigger_dump() writes to ("." by default).
  std::string dump_dir = ".";
  /// Binary wire egress: every tick's snapshot (and its alerts) is
  /// encoded and sent through this exporter (nullptr = no wire path).
  /// See obs/wire/wire_encoder.h; must outlive the pump.
  wire::WireExporter* wire = nullptr;
  /// Stage profiler sampled into every snapshot and attached (as
  /// profile lines) to breach dumps.  nullptr = no profile;
  /// &Profiler::global() wires up the ambient-span profiler.
  Profiler* profiler = nullptr;
  /// Called after each tick with the finished snapshot.
  std::function<void(const PumpSnapshot&)> on_snapshot;
};

/// Periodic snapshot/watchdog driver.  Either call tick() yourself
/// (deterministic; tests do this) or start() a background thread that
/// ticks every interval until stop()/destruction.
class MetricsPump {
 public:
  explicit MetricsPump(Registry& registry = Registry::global(),
                       PumpOptions options = {});
  MetricsPump(const MetricsPump&) = delete;
  MetricsPump& operator=(const MetricsPump&) = delete;
  ~MetricsPump();

  /// One synchronous pump cycle: sample, evaluate, dump-on-breach, sink,
  /// callback.  Thread-safe (serialized against the background thread).
  PumpSnapshot tick();

  /// Starts the background thread (idempotent).
  void start();
  /// Stops and joins it (idempotent; also called by the destructor).
  void stop();
  [[nodiscard]] bool running() const;

  /// Ticks completed so far.
  [[nodiscard]] std::uint64_t ticks() const;

 private:
  void thread_main();

  Registry& registry_;
  PumpOptions options_;
  std::chrono::steady_clock::time_point born_;

  mutable std::mutex tick_mutex_;  // serializes tick()
  std::uint64_t tick_count_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> prev_counters_;
  /// Previous labeled-counter values keyed "name{labels}".
  std::map<std::string, std::uint64_t> prev_labeled_;

  mutable std::mutex state_mutex_;  // guards the thread lifecycle
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: never breaches (a disabled registry has no values).
class SloWatchdog {
 public:
  SloWatchdog() = default;
  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;
  void add_rule(SloRule rule) { rules_.push_back(std::move(rule)); }
  [[nodiscard]] std::size_t num_rules() const { return rules_.size(); }
  [[nodiscard]] std::vector<AlertEvent> evaluate(
      const Registry& = Registry::global()) {
    return {};
  }
  [[nodiscard]] bool breaching(const std::string&) const { return false; }

 private:
  std::vector<SloRule> rules_;
};

struct PumpOptions {
  double interval_seconds = 1.0;
  std::string snapshot_path;
  SloWatchdog* watchdog = nullptr;
  FlightRecorder* recorder = nullptr;
  std::string dump_dir = ".";
  wire::WireExporter* wire = nullptr;
  Profiler* profiler = nullptr;
  /// No std::function here: the disabled pump never ticks a snapshot.
  void* on_snapshot = nullptr;
};

/// No-op stand-in: no thread, no sink, empty snapshots.
class MetricsPump {
 public:
  explicit MetricsPump(Registry& = Registry::global(), PumpOptions = {}) {}
  MetricsPump(const MetricsPump&) = delete;
  MetricsPump& operator=(const MetricsPump&) = delete;
  PumpSnapshot tick() {
    PumpSnapshot snapshot;
    snapshot.tick = ++tick_count_;
    return snapshot;
  }
  void start() {}
  void stop() {}
  [[nodiscard]] bool running() const { return false; }
  [[nodiscard]] std::uint64_t ticks() const { return tick_count_; }

 private:
  std::uint64_t tick_count_ = 0;
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
