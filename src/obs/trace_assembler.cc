#include "obs/trace_assembler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/flat_json.h"

namespace lumen::obs {

namespace {

/// Builds the subtree rooted at record `index` from the grouped children
/// map (indices into `records`).
TraceNode build_node(
    std::span<const CausalSpanRecord> records, std::size_t index,
    const std::unordered_map<std::uint64_t, std::vector<std::size_t>>&
        children_of) {
  TraceNode node;
  node.span = records[index];
  const auto it = children_of.find(node.span.span_id);
  if (it != children_of.end()) {
    node.children.reserve(it->second.size());
    for (const std::size_t child : it->second)
      node.children.push_back(build_node(records, child, children_of));
  }
  return node;
}

void append_json_fields(std::string& out, const CausalSpanRecord& s) {
  out += "\"trace_id\":" + std::to_string(s.trace_id);
  out += ",\"span_id\":" + std::to_string(s.span_id);
  out += ",\"parent_span_id\":" + std::to_string(s.parent_span_id);
  out += ",\"name\":\"";
  out += detail::json_escape(s.name != nullptr ? s.name : "");
  out += '"';
  if (s.node != kSpanNoNode) out += ",\"node\":" + std::to_string(s.node);
  out += ",\"start_ns\":" + std::to_string(s.start_ns);
  out += ",\"duration_ns\":" + std::to_string(s.duration_ns);
  if (s.vt_begin >= 0.0) {
    out += ",\"vt_begin\":" + detail::fmt_double_exact(s.vt_begin);
    out += ",\"vt_end\":" + detail::fmt_double_exact(s.vt_end);
  }
  out += ",\"attr0\":" + std::to_string(s.attr0);
  out += ",\"attr1\":" + std::to_string(s.attr1);
}

void append_node_json(std::string& out, const TraceNode& node) {
  out += '{';
  append_json_fields(out, node.span);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out += ',';
    append_node_json(out, node.children[i]);
  }
  out += "]}";
}

void append_node_text(std::string& out, const TraceNode& node,
                      const std::string& prefix, bool last) {
  out += prefix;
  out += last ? "└─ " : "├─ ";
  out += node.span.name != nullptr ? node.span.name : "<null>";
  if (node.span.node != kSpanNoNode)
    out += " node=" + std::to_string(node.span.node);
  if (node.span.vt_begin >= 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, " vt=[%g,%g]", node.span.vt_begin,
                  node.span.vt_end);
    out += buf;
  }
  if (node.span.attr0 != 0 || node.span.attr1 != 0) {
    out += " attrs=(" + std::to_string(node.span.attr0) + "," +
           std::to_string(node.span.attr1) + ")";
  }
  {
    char buf[48];
    std::snprintf(buf, sizeof buf, " %.3fms",
                  static_cast<double>(node.span.duration_ns) / 1e6);
    out += buf;
  }
  out += '\n';
  const std::string child_prefix = prefix + (last ? "   " : "│  ");
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    append_node_text(out, node.children[i], child_prefix,
                     i + 1 == node.children.size());
  }
}

void collect_named(const TraceNode& node, std::string_view name,
                   std::vector<const TraceNode*>& out) {
  if (node.span.name != nullptr && name == node.span.name)
    out.push_back(&node);
  for (const TraceNode& child : node.children)
    collect_named(child, name, out);
}

}  // namespace

std::vector<std::uint64_t> trace_ids(
    std::span<const CausalSpanRecord> spans) {
  std::vector<std::uint64_t> ids;
  for (const CausalSpanRecord& s : spans)
    if (s.trace_id != 0) ids.push_back(s.trace_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

TraceTree assemble_trace(std::span<const CausalSpanRecord> spans,
                         std::uint64_t trace_id) {
  TraceTree tree;
  tree.trace_id = trace_id;

  // Indices of this trace's records, in span-id (= creation) order.
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < spans.size(); ++i)
    if (spans[i].trace_id == trace_id) members.push_back(i);
  std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
    return spans[a].span_id < spans[b].span_id;
  });
  tree.total_spans = members.size();
  if (members.empty()) return tree;

  std::unordered_map<std::uint64_t, std::size_t> by_span_id;
  by_span_id.reserve(members.size());
  for (const std::size_t i : members) by_span_id.emplace(spans[i].span_id, i);

  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children_of;
  std::vector<std::size_t> roots;
  for (const std::size_t i : members) {
    const std::uint64_t parent = spans[i].parent_span_id;
    if (parent != 0 && by_span_id.contains(parent)) {
      children_of[parent].push_back(i);
    } else {
      roots.push_back(i);
      if (parent != 0) ++tree.orphans;
    }
  }

  tree.roots.reserve(roots.size());
  for (const std::size_t i : roots)
    tree.roots.push_back(build_node(spans, i, children_of));
  return tree;
}

std::vector<TraceTree> assemble_traces(
    std::span<const CausalSpanRecord> spans) {
  std::vector<TraceTree> trees;
  for (const std::uint64_t id : trace_ids(spans))
    trees.push_back(assemble_trace(spans, id));
  return trees;
}

const TraceNode* find_span(const TraceTree& tree, std::string_view name) {
  const std::vector<const TraceNode*> all = find_spans(tree, name);
  return all.empty() ? nullptr : all.front();
}

std::vector<const TraceNode*> find_spans(const TraceTree& tree,
                                         std::string_view name) {
  std::vector<const TraceNode*> out;
  for (const TraceNode& root : tree.roots) collect_named(root, name, out);
  return out;
}

std::string causal_span_to_json(const CausalSpanRecord& span) {
  std::string out = "{";
  append_json_fields(out, span);
  out += '}';
  return out;
}

std::string trace_tree_to_json(const TraceTree& tree) {
  std::string out = "{\"trace_id\":" + std::to_string(tree.trace_id);
  out += ",\"total_spans\":" + std::to_string(tree.total_spans);
  out += ",\"orphans\":" + std::to_string(tree.orphans);
  out += ",\"roots\":[";
  for (std::size_t i = 0; i < tree.roots.size(); ++i) {
    if (i != 0) out += ',';
    append_node_json(out, tree.roots[i]);
  }
  out += "]}";
  return out;
}

std::string render_trace_tree(const TraceTree& tree) {
  std::string out = "trace " + std::to_string(tree.trace_id) + " (" +
                    std::to_string(tree.total_spans) + " spans";
  if (tree.orphans != 0)
    out += ", " + std::to_string(tree.orphans) + " orphaned";
  out += ")\n";
  for (std::size_t i = 0; i < tree.roots.size(); ++i)
    append_node_text(out, tree.roots[i], "", i + 1 == tree.roots.size());
  return out;
}

}  // namespace lumen::obs
