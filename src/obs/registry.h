// Named telemetry instruments: counters and log-scale latency histograms.
//
// Counter and LatencyHistogram increments are lock-free (relaxed atomics)
// so hot routing paths can be instrumented without serialization.  The
// Registry maps stable names to instruments; call sites cache the
// reference once:
//
//   static obs::Counter& c = obs::Registry::global().counter("lumen.x");
//   c.add();
//
// which costs one relaxed fetch_add per event.  With LUMEN_OBS_DISABLED
// the same code compiles to a no-op (see obs.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "obs/tagset.h"

namespace lumen::obs {

/// RunningStats-compatible condensation of a histogram.  Passive data,
/// shared by both build modes (the wire codec and exporters move these
/// across the enabled/disabled boundary).
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  friend bool operator==(const HistogramSummary&,
                         const HistogramSummary&) = default;
};

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

namespace lumen::obs {
inline namespace enabled {

/// Monotonic event counter; increments are lock-free and thread-safe.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level instrument (utilization ratios, queue depths at
/// sample time).  Unlike a Counter it can move both ways; the pump
/// snapshots its current value, no delta semantics.  Lock-free: the
/// double travels as its bit pattern through one relaxed atomic.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};  // 0 is the bit pattern of 0.0
};

/// Fixed-bucket base-2 log-scale histogram over unsigned ticks.
///
/// Bucket 0 holds exact zeros; bucket b >= 1 holds [2^(b-1), 2^b).  For
/// latencies the convention is ticks = nanoseconds (use record_seconds /
/// percentile_seconds); unit-less quantities (queue depths, message
/// counts) record raw ticks.  All mutation is lock-free; percentile reads
/// interpolate linearly inside the covering bucket, so the relative error
/// is bounded by the bucket width (a factor of 2).
class LatencyHistogram {
 public:
  /// 0, then 64 powers-of-two ranges: enough for any uint64 tick.
  static constexpr int kBuckets = 65;

  void record(std::uint64_t ticks) noexcept {
    buckets_[bucket_of(ticks)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ticks, std::memory_order_relaxed);
    update_extreme(min_, ticks, /*want_less=*/true);
    update_extreme(max_, ticks, /*want_less=*/false);
  }
  /// Same, also retaining `trace_id` as the covering bucket's exemplar
  /// (last writer wins; 0 means "no trace" and leaves the slot alone).
  void record(std::uint64_t ticks, std::uint64_t trace_id) noexcept {
    record(ticks);
    if (trace_id != 0)
      exemplars_[bucket_of(ticks)].store(trace_id, std::memory_order_relaxed);
  }
  /// Records a duration in seconds as nanosecond ticks (negative -> 0).
  void record_seconds(double seconds) noexcept {
    record(seconds_to_ticks(seconds));
  }
  void record_seconds(double seconds, std::uint64_t trace_id) noexcept {
    record(seconds_to_ticks(seconds), trace_id);
  }

  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Sum of all recorded ticks.
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;

  /// The q-th percentile (0 <= q <= 1) in ticks, linearly interpolated
  /// within the covering bucket.  0 when empty.
  [[nodiscard]] double percentile(double q) const noexcept;
  [[nodiscard]] double percentile_seconds(double q) const noexcept {
    return percentile(q) / 1e9;
  }

  /// count/mean/min/max like RunningStats, plus p50/p90/p99 (ticks).
  [[nodiscard]] HistogramSummary summary() const noexcept;

  void reset() noexcept;

  /// Observations in bucket b (for exporters).
  [[nodiscard]] std::uint64_t bucket_count(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// The last trace_id recorded into bucket b (0 when none).
  [[nodiscard]] std::uint64_t exemplar(int b) const noexcept {
    return exemplars_[b].load(std::memory_order_relaxed);
  }
  /// The exemplar of the highest bucket holding one: the last trace that
  /// went through the worst latency band this histogram has seen.
  [[nodiscard]] std::uint64_t worst_exemplar() const noexcept {
    for (int b = kBuckets - 1; b >= 0; --b) {
      const std::uint64_t id = exemplar(b);
      if (id != 0) return id;
    }
    return 0;
  }
  /// Inclusive upper bound of bucket b: 0 for b == 0, else 2^b - 1.
  [[nodiscard]] static std::uint64_t bucket_upper_bound(int b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }
  [[nodiscard]] static int bucket_of(std::uint64_t ticks) noexcept {
    return ticks == 0 ? 0 : std::bit_width(ticks);
  }

 private:
  [[nodiscard]] static std::uint64_t seconds_to_ticks(double seconds) noexcept {
    return seconds <= 0.0 ? 0
                          : static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
  }
  static void update_extreme(std::atomic<std::uint64_t>& slot,
                             std::uint64_t ticks, bool want_less) noexcept {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (want_less ? ticks < seen : ticks > seen) {
      if (slot.compare_exchange_weak(seen, ticks, std::memory_order_relaxed))
        break;
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> exemplars_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // inline namespace enabled

namespace detail {

/// Bumps lumen.obs.labels_dropped (out of line so this header need not
/// name the global registry from template code).
void note_labels_dropped();

/// splitmix64 finalizer: spreads packed TagSet bits across the table.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace detail

inline namespace enabled {

/// One instrument per TagSet under a shared name ("lumen.svc.admitted"
/// keyed by {tenant=N}).  The hot path is a lock-free open-addressed
/// probe over packed TagSet keys -- one hash, one acquire load, then the
/// child's own relaxed atomics; only the first sighting of a label set
/// takes the family mutex.  Growth is capped: past `max_children`
/// distinct label sets, new ones collapse into the shared overflow()
/// child and lumen.obs.labels_dropped counts the loss, so a tag leak
/// (e.g. unbounded tenant ids) degrades to an aggregate instead of
/// eating memory.
template <class T>
class LabeledFamily {
 public:
  static constexpr std::size_t kDefaultMaxChildren = 256;

  explicit LabeledFamily(std::string name,
                         std::size_t max_children = kDefaultMaxChildren)
      : name_(std::move(name)),
        max_children_(std::max<std::size_t>(1, max_children)),
        mask_(std::bit_ceil(max_children_ * 2) - 1),
        slots_(mask_ + 1) {}
  LabeledFamily(const LabeledFamily&) = delete;
  LabeledFamily& operator=(const LabeledFamily&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The child instrument for `tags`, created on first sight.  An empty
  /// set, or any new set past the cardinality cap, lands in overflow().
  T& at(TagSet tags) {
    const std::uint64_t key = tags.key();
    if (key == 0) return overflow_;
    std::size_t i = detail::mix64(key) & mask_;
    for (;;) {
      const std::uint64_t seen = slots_[i].key.load(std::memory_order_acquire);
      if (seen == key) return *slots_[i].child.load(std::memory_order_acquire);
      if (seen == 0) {
        T* child = insert(tags);
        if (child != nullptr) return *child;
        dropped_.fetch_add(1, std::memory_order_relaxed);
        detail::note_labels_dropped();
        return overflow_;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Shared sink for empty tag sets and post-cap overflow.
  [[nodiscard]] T& overflow() noexcept { return overflow_; }
  [[nodiscard]] const T& overflow() const noexcept { return overflow_; }

  /// Distinct label sets materialized so far.
  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return children_.size();
  }
  /// Increments routed to overflow() because the cap was hit.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t max_children() const noexcept {
    return max_children_;
  }

  /// (canonical labels, child) pairs sorted by labels, for exporters.
  [[nodiscard]] std::vector<std::pair<std::string, const T*>> entries() const {
    std::vector<std::pair<std::string, const T*>> out;
    {
      const std::scoped_lock lock(mutex_);
      out.reserve(children_.size());
      for (const auto& child : children_)
        out.emplace_back(child->tags.canonical(), &child->instrument);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Zeroes every child (label registrations survive).  For tests.
  void reset() {
    const std::scoped_lock lock(mutex_);
    for (auto& child : children_) child->instrument.reset();
    overflow_.reset();
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Child {
    TagSet tags;
    T instrument;
  };
  struct Slot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<T*> child{nullptr};
  };

  /// Slow path: re-probe and publish under the mutex.  Returns nullptr
  /// when the family is at its cardinality cap.
  T* insert(TagSet tags) {
    const std::uint64_t key = tags.key();
    const std::scoped_lock lock(mutex_);
    std::size_t i = detail::mix64(key) & mask_;
    for (;;) {
      const std::uint64_t seen =
          slots_[i].key.load(std::memory_order_relaxed);
      if (seen == key) return slots_[i].child.load(std::memory_order_relaxed);
      if (seen == 0) break;
      i = (i + 1) & mask_;
    }
    if (children_.size() >= max_children_) return nullptr;
    children_.push_back(std::make_unique<Child>());
    Child* child = children_.back().get();
    child->tags = tags;
    // Child before key: a reader that acquires the key must see the
    // pointer (and the zero-initialized instrument behind it).
    slots_[i].child.store(&child->instrument, std::memory_order_release);
    slots_[i].key.store(key, std::memory_order_release);
    return &child->instrument;
  }

  std::string name_;
  std::size_t max_children_;
  std::size_t mask_;
  std::vector<Slot> slots_;
  T overflow_;
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Child>> children_;
};

/// Name -> instrument map.  Lookup takes a mutex (cache the reference at
/// call sites); the returned references stay valid for the registry's
/// lifetime.  A process-wide instance is available via global().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// The counter/gauge/histogram registered under `name`, creating it on
  /// first use.  Thread-safe.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// The labeled family registered under `name`, creating it on first
  /// use.  A family may share its name with a plain instrument; the
  /// exporters then render the labeled children as extra series of that
  /// metric (e.g. lumen.svc.admitted plus lumen.svc.admitted{tenant=3}).
  LabeledFamily<Counter>& labeled_counter(std::string_view name);
  LabeledFamily<Gauge>& labeled_gauge(std::string_view name);
  LabeledFamily<LatencyHistogram>& labeled_histogram(std::string_view name);

  /// Sorted (name, instrument) views for exporters.
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>>
  counter_entries() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>>
  gauge_entries() const;
  [[nodiscard]] std::vector<std::pair<std::string, const LatencyHistogram*>>
  histogram_entries() const;
  [[nodiscard]] std::vector<
      std::pair<std::string, const LabeledFamily<Counter>*>>
  labeled_counter_entries() const;
  [[nodiscard]] std::vector<std::pair<std::string, const LabeledFamily<Gauge>*>>
  labeled_gauge_entries() const;
  [[nodiscard]] std::vector<
      std::pair<std::string, const LabeledFamily<LatencyHistogram>*>>
  labeled_histogram_entries() const;

  /// Zeroes every instrument (registrations survive).  For tests.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::string, std::unique_ptr<LabeledFamily<Counter>>, std::less<>>
      labeled_counters_;
  std::map<std::string, std::unique_ptr<LabeledFamily<Gauge>>, std::less<>>
      labeled_gauges_;
  std::map<std::string, std::unique_ptr<LabeledFamily<LatencyHistogram>>,
           std::less<>>
      labeled_histograms_;
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: see the enabled definition for semantics.
class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

/// No-op stand-in: see the enabled definition for semantics.
class Gauge {
 public:
  void set(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  void reset() noexcept {}
};

/// No-op stand-in: see the enabled definition for semantics.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 65;
  void record(std::uint64_t) noexcept {}
  void record(std::uint64_t, std::uint64_t) noexcept {}
  void record_seconds(double) noexcept {}
  void record_seconds(double, std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] double mean() const noexcept { return 0.0; }
  [[nodiscard]] std::uint64_t min() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return 0; }
  [[nodiscard]] double percentile(double) const noexcept { return 0.0; }
  [[nodiscard]] double percentile_seconds(double) const noexcept {
    return 0.0;
  }
  [[nodiscard]] HistogramSummary summary() const noexcept { return {}; }
  void reset() noexcept {}
  [[nodiscard]] std::uint64_t bucket_count(int) const noexcept { return 0; }
  [[nodiscard]] std::uint64_t exemplar(int) const noexcept { return 0; }
  [[nodiscard]] std::uint64_t worst_exemplar() const noexcept { return 0; }
  [[nodiscard]] static std::uint64_t bucket_upper_bound(int) noexcept {
    return 0;
  }
  [[nodiscard]] static int bucket_of(std::uint64_t) noexcept { return 0; }
};

/// No-op stand-in: every TagSet lands on one shared dummy child.
template <class T>
class LabeledFamily {
 public:
  static constexpr std::size_t kDefaultMaxChildren = 256;
  T& at(TagSet) noexcept { return dummy_; }
  [[nodiscard]] T& overflow() noexcept { return dummy_; }
  [[nodiscard]] const T& overflow() const noexcept { return dummy_; }
  [[nodiscard]] const std::string& name() const noexcept {
    static const std::string empty;
    return empty;
  }
  [[nodiscard]] std::size_t size() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  [[nodiscard]] std::size_t max_children() const noexcept { return 0; }
  [[nodiscard]] std::vector<std::pair<std::string, const T*>> entries() const {
    return {};
  }
  void reset() noexcept {}

 private:
  T dummy_;
};

/// No-op stand-in: hands out shared dummy instruments.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global() {
    static Registry instance;
    return instance;
  }
  Counter& counter(std::string_view) {
    static Counter dummy;
    return dummy;
  }
  Gauge& gauge(std::string_view) {
    static Gauge dummy;
    return dummy;
  }
  LatencyHistogram& histogram(std::string_view) {
    static LatencyHistogram dummy;
    return dummy;
  }
  LabeledFamily<Counter>& labeled_counter(std::string_view) {
    static LabeledFamily<Counter> dummy;
    return dummy;
  }
  LabeledFamily<Gauge>& labeled_gauge(std::string_view) {
    static LabeledFamily<Gauge> dummy;
    return dummy;
  }
  LabeledFamily<LatencyHistogram>& labeled_histogram(std::string_view) {
    static LabeledFamily<LatencyHistogram> dummy;
    return dummy;
  }
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>>
  counter_entries() const {
    return {};
  }
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>>
  gauge_entries() const {
    return {};
  }
  [[nodiscard]] std::vector<std::pair<std::string, const LatencyHistogram*>>
  histogram_entries() const {
    return {};
  }
  [[nodiscard]] std::vector<
      std::pair<std::string, const LabeledFamily<Counter>*>>
  labeled_counter_entries() const {
    return {};
  }
  [[nodiscard]] std::vector<std::pair<std::string, const LabeledFamily<Gauge>*>>
  labeled_gauge_entries() const {
    return {};
  }
  [[nodiscard]] std::vector<
      std::pair<std::string, const LabeledFamily<LatencyHistogram>*>>
  labeled_histogram_entries() const {
    return {};
  }
  void reset() {}
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
