// Named telemetry instruments: counters and log-scale latency histograms.
//
// Counter and LatencyHistogram increments are lock-free (relaxed atomics)
// so hot routing paths can be instrumented without serialization.  The
// Registry maps stable names to instruments; call sites cache the
// reference once:
//
//   static obs::Counter& c = obs::Registry::global().counter("lumen.x");
//   c.add();
//
// which costs one relaxed fetch_add per event.  With LUMEN_OBS_DISABLED
// the same code compiles to a no-op (see obs.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace lumen::obs {

/// RunningStats-compatible condensation of a histogram.  Passive data,
/// shared by both build modes (the wire codec and exporters move these
/// across the enabled/disabled boundary).
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  friend bool operator==(const HistogramSummary&,
                         const HistogramSummary&) = default;
};

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <atomic>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

namespace lumen::obs {
inline namespace enabled {

/// Monotonic event counter; increments are lock-free and thread-safe.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins level instrument (utilization ratios, queue depths at
/// sample time).  Unlike a Counter it can move both ways; the pump
/// snapshots its current value, no delta semantics.  Lock-free: the
/// double travels as its bit pattern through one relaxed atomic.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};  // 0 is the bit pattern of 0.0
};

/// Fixed-bucket base-2 log-scale histogram over unsigned ticks.
///
/// Bucket 0 holds exact zeros; bucket b >= 1 holds [2^(b-1), 2^b).  For
/// latencies the convention is ticks = nanoseconds (use record_seconds /
/// percentile_seconds); unit-less quantities (queue depths, message
/// counts) record raw ticks.  All mutation is lock-free; percentile reads
/// interpolate linearly inside the covering bucket, so the relative error
/// is bounded by the bucket width (a factor of 2).
class LatencyHistogram {
 public:
  /// 0, then 64 powers-of-two ranges: enough for any uint64 tick.
  static constexpr int kBuckets = 65;

  void record(std::uint64_t ticks) noexcept {
    buckets_[bucket_of(ticks)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ticks, std::memory_order_relaxed);
    update_extreme(min_, ticks, /*want_less=*/true);
    update_extreme(max_, ticks, /*want_less=*/false);
  }
  /// Records a duration in seconds as nanosecond ticks (negative -> 0).
  void record_seconds(double seconds) noexcept {
    record(seconds <= 0.0 ? 0
                          : static_cast<std::uint64_t>(seconds * 1e9 + 0.5));
  }

  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Sum of all recorded ticks.
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;

  /// The q-th percentile (0 <= q <= 1) in ticks, linearly interpolated
  /// within the covering bucket.  0 when empty.
  [[nodiscard]] double percentile(double q) const noexcept;
  [[nodiscard]] double percentile_seconds(double q) const noexcept {
    return percentile(q) / 1e9;
  }

  /// count/mean/min/max like RunningStats, plus p50/p90/p99 (ticks).
  [[nodiscard]] HistogramSummary summary() const noexcept;

  void reset() noexcept;

  /// Observations in bucket b (for exporters).
  [[nodiscard]] std::uint64_t bucket_count(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket b: 0 for b == 0, else 2^b - 1.
  [[nodiscard]] static std::uint64_t bucket_upper_bound(int b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }
  [[nodiscard]] static int bucket_of(std::uint64_t ticks) noexcept {
    return ticks == 0 ? 0 : std::bit_width(ticks);
  }

 private:
  static void update_extreme(std::atomic<std::uint64_t>& slot,
                             std::uint64_t ticks, bool want_less) noexcept {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (want_less ? ticks < seen : ticks > seen) {
      if (slot.compare_exchange_weak(seen, ticks, std::memory_order_relaxed))
        break;
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Name -> instrument map.  Lookup takes a mutex (cache the reference at
/// call sites); the returned references stay valid for the registry's
/// lifetime.  A process-wide instance is available via global().
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// The counter/gauge/histogram registered under `name`, creating it on
  /// first use.  Thread-safe.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Sorted (name, instrument) views for exporters.
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>>
  counter_entries() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>>
  gauge_entries() const;
  [[nodiscard]] std::vector<std::pair<std::string, const LatencyHistogram*>>
  histogram_entries() const;

  /// Zeroes every instrument (registrations survive).  For tests.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: see the enabled definition for semantics.
class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

/// No-op stand-in: see the enabled definition for semantics.
class Gauge {
 public:
  void set(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  void reset() noexcept {}
};

/// No-op stand-in: see the enabled definition for semantics.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 65;
  void record(std::uint64_t) noexcept {}
  void record_seconds(double) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] double mean() const noexcept { return 0.0; }
  [[nodiscard]] std::uint64_t min() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return 0; }
  [[nodiscard]] double percentile(double) const noexcept { return 0.0; }
  [[nodiscard]] double percentile_seconds(double) const noexcept {
    return 0.0;
  }
  [[nodiscard]] HistogramSummary summary() const noexcept { return {}; }
  void reset() noexcept {}
  [[nodiscard]] std::uint64_t bucket_count(int) const noexcept { return 0; }
  [[nodiscard]] static std::uint64_t bucket_upper_bound(int) noexcept {
    return 0;
  }
  [[nodiscard]] static int bucket_of(std::uint64_t) noexcept { return 0; }
};

/// No-op stand-in: hands out shared dummy instruments.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global() {
    static Registry instance;
    return instance;
  }
  Counter& counter(std::string_view) {
    static Counter dummy;
    return dummy;
  }
  Gauge& gauge(std::string_view) {
    static Gauge dummy;
    return dummy;
  }
  LatencyHistogram& histogram(std::string_view) {
    static LatencyHistogram dummy;
    return dummy;
  }
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>>
  counter_entries() const {
    return {};
  }
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>>
  gauge_entries() const {
    return {};
  }
  [[nodiscard]] std::vector<std::pair<std::string, const LatencyHistogram*>>
  histogram_entries() const {
    return {};
  }
  void reset() {}
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
