// Compile-time switch for the lumen::obs telemetry subsystem.
//
// Define LUMEN_OBS_DISABLED (globally via -DLUMEN_OBS_DISABLED=ON at
// configure time, or per translation unit before including any obs
// header) and every counter increment, histogram record, and trace span
// compiles down to nothing: the headers swap in inline no-op stubs with
// the identical API, so call sites never need #ifdef guards.
//
// The enabled and disabled implementations live in distinct inline
// namespaces (lumen::obs::enabled / lumen::obs::disabled), so a binary
// may legally mix translation units built both ways — the disabled-mode
// unit test relies on this.
#pragma once

#if defined(LUMEN_OBS_DISABLED)
#define LUMEN_OBS_ENABLED 0
#else
#define LUMEN_OBS_ENABLED 1
#endif
