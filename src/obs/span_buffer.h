// Causal span records + a lock-free bounded ring buffer for them.
//
// A CausalSpanRecord is the v2 counterpart of TraceRecord: besides the
// name and wall timing it carries the Dapper-style identity triple
// (trace_id, span_id, parent_span_id) that trace_assembler.h uses to
// reconstruct the causal tree of a distributed run, plus a node id, a
// virtual-time interval (protocol rounds / async virtual time), and two
// free attribute words.
//
// SpanBuffer is the flight-recorder ring those records land in.  Unlike
// TraceCollector it is lock-free on the emit path (a seqlock per slot:
// writers never block, readers retry or skip slots that are mid-write),
// so span emission is safe from the parallel batch-routing threads and
// cheap enough for protocol inner loops.  Overwritten records are counted
// in dropped() and in the `lumen.obs.spans_dropped` counter.  With
// LUMEN_OBS_DISABLED everything here is a no-op (see obs.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/obs.h"

namespace lumen::obs {

/// Node id value meaning "no node recorded on this span".
inline constexpr std::uint32_t kSpanNoNode = 0xffffffffu;

/// One closed causal span.  `name` must point to storage outliving the
/// buffer (string literals in practice).  vt_begin/vt_end < 0 mean "no
/// virtual-time interval recorded".
struct CausalSpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// 0 = root span of its trace.
  std::uint64_t parent_span_id = 0;
  const char* name = nullptr;
  /// Physical node the span belongs to, or kSpanNoNode.
  std::uint32_t node = kSpanNoNode;
  /// Steady-clock open timestamp in ns (arbitrary epoch).
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Protocol virtual time covered by the span (sync rounds or async
  /// virtual time); negative when not recorded.
  double vt_begin = -1.0;
  double vt_end = -1.0;
  /// Span-kind specific payload (documented per emitting site).
  std::uint64_t attr0 = 0;
  std::uint64_t attr1 = 0;

  friend bool operator==(const CausalSpanRecord&,
                         const CausalSpanRecord&) = default;
};

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <array>
#include <atomic>
#include <memory>

namespace lumen::obs {
inline namespace enabled {

/// Fixed-capacity lock-free ring of CausalSpanRecords.
///
/// Each slot is guarded by a seqlock: emit() takes a ticket from a global
/// counter, marks the slot odd, publishes the record words, then marks it
/// even again.  snapshot() copies slots optimistically and keeps only
/// internally-consistent reads, returning records ordered by emission.
/// All record words are stored as relaxed atomics between two fences, so
/// concurrent emit/snapshot is data-race-free (the tsan preset runs the
/// obs suite against this).
class SpanBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpanBuffer(std::size_t capacity = kDefaultCapacity);
  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// The process-wide buffer every CausalSpan lands in by default.
  static SpanBuffer& global();

  /// Publishes one record.  Lock-free; wait-free except for the ticket
  /// fetch_add.  Overwrites the oldest slot once full.
  void emit(const CausalSpanRecord& record);

  /// The retained records, oldest first.  Skips slots that are being
  /// overwritten concurrently.
  [[nodiscard]] std::vector<CausalSpanRecord> snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Records emitted over the buffer's lifetime.
  [[nodiscard]] std::uint64_t total_emitted() const noexcept;
  /// Records lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Resets the buffer to empty.  NOT safe concurrently with emit();
  /// intended for test isolation only.
  void clear();

 private:
  /// Packed word count of one record (see pack()/unpack() in the .cc).
  static constexpr std::size_t kWords = 11;

  struct Slot {
    /// Seqlock word: 0 = never written; odd = write in progress;
    /// 2*ticket + 2 = record of `ticket` fully published.
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};  // ticket counter = lifetime total
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: see the enabled definition for semantics.
class SpanBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;
  explicit SpanBuffer(std::size_t = kDefaultCapacity) {}
  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;
  static SpanBuffer& global() {
    static SpanBuffer instance;
    return instance;
  }
  void emit(const CausalSpanRecord&) {}
  [[nodiscard]] std::vector<CausalSpanRecord> snapshot() const { return {}; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] std::size_t size() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t total_emitted() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  void clear() {}
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
