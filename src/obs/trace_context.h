// Trace-context propagation: the identity that ties a distributed run's
// spans into one causal tree.
//
// A TraceContext is the Dapper-style pair {trace_id, parent_span_id}.  It
// is plain passive data (always compiled, freely copyable) so protocol
// messages can carry one by value even in LUMEN_OBS_DISABLED builds —
// there it just stays zero.
//
// CausalSpan is the RAII emitter.  Two construction modes:
//
//   obs::CausalSpan span("rwa.open");          // ambient: parents under
//                                              // the thread's current
//                                              // context (or starts a new
//                                              // trace) and installs
//                                              // itself as the context
//                                              // until close()
//
//   obs::CausalSpan span("dist.node_round", offer.ctx);
//                                              // explicit parent: links
//                                              // under the message that
//                                              // caused it; does not
//                                              // touch the thread-local
//                                              // context
//
// On close() (or destruction) one CausalSpanRecord lands in the target
// SpanBuffer.  Ambient spans must close in LIFO order per thread (the
// usual scoped usage).  With LUMEN_OBS_DISABLED both modes compile to
// no-ops and context() returns the zero context.
#pragma once

#include <cstdint>

#include "obs/obs.h"
#include "obs/span_buffer.h"

namespace lumen::obs {

/// Causal coordinates carried on messages: which trace an event belongs
/// to and which span caused it.  trace_id 0 = "no trace" (the zero
/// context propagated by disabled builds).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <chrono>

namespace lumen::obs {
inline namespace enabled {

/// The calling thread's current ambient trace context ({0,0} when no
/// ambient CausalSpan is open on this thread).
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// RAII causal span: opens on construction, emits one CausalSpanRecord
/// into `buffer` on close() or destruction.
class CausalSpan {
 public:
  /// Ambient mode: parents under current_trace_context() — starting a
  /// fresh trace when there is none — and installs this span's context as
  /// the thread's ambient context until close().
  explicit CausalSpan(const char* name,
                      SpanBuffer* buffer = &SpanBuffer::global());

  /// Explicit-parent mode: links under `parent` (a fresh trace when
  /// `parent` is invalid).  Leaves the thread-local context alone, so it
  /// is safe for event-loop code emitting many sibling spans.
  CausalSpan(const char* name, TraceContext parent,
             SpanBuffer* buffer = &SpanBuffer::global());

  CausalSpan(const CausalSpan&) = delete;
  CausalSpan& operator=(const CausalSpan&) = delete;
  ~CausalSpan();

  /// Emits the record now (and, for ambient spans, restores the previous
  /// ambient context); later close()/destruction is a no-op.
  void close();

  /// This span's identity as a context for children/messages.
  [[nodiscard]] TraceContext context() const noexcept {
    return {trace_id_, span_id_};
  }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }
  [[nodiscard]] std::uint64_t span_id() const noexcept { return span_id_; }

  /// Optional record fields (see CausalSpanRecord).
  void set_node(std::uint32_t node) noexcept { node_ = node; }
  void set_virtual_interval(double begin, double end) noexcept {
    vt_begin_ = begin;
    vt_end_ = end;
  }
  void set_attributes(std::uint64_t a0, std::uint64_t a1) noexcept {
    attr0_ = a0;
    attr1_ = a1;
  }

 private:
  using clock = std::chrono::steady_clock;

  const char* name_;
  SpanBuffer* buffer_;
  clock::time_point start_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  std::uint32_t node_ = kSpanNoNode;
  double vt_begin_ = -1.0;
  double vt_end_ = -1.0;
  std::uint64_t attr0_ = 0;
  std::uint64_t attr1_ = 0;
  TraceContext previous_{};  // ambient spans: context to restore
  bool ambient_ = false;
  bool open_ = true;
};

/// Installs `ctx` as the thread's ambient trace context for the current
/// scope (restores the previous one on destruction).  Lets worker threads
/// adopt a request's context before running ambient-instrumented code.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx) noexcept;
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  ~ScopedTraceContext();

 private:
  TraceContext previous_;
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

[[nodiscard]] inline TraceContext current_trace_context() noexcept {
  return {};
}

/// No-op stand-in: see the enabled definition for semantics.
class CausalSpan {
 public:
  explicit CausalSpan(const char*, SpanBuffer* = &SpanBuffer::global()) {}
  CausalSpan(const char*, TraceContext, SpanBuffer* = &SpanBuffer::global()) {}
  CausalSpan(const CausalSpan&) = delete;
  CausalSpan& operator=(const CausalSpan&) = delete;
  void close() {}
  [[nodiscard]] TraceContext context() const noexcept { return {}; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t span_id() const noexcept { return 0; }
  void set_node(std::uint32_t) noexcept {}
  void set_virtual_interval(double, double) noexcept {}
  void set_attributes(std::uint64_t, std::uint64_t) noexcept {}
};

/// No-op stand-in: see the enabled definition for semantics.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext) noexcept {}
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
