#include "obs/flight_recorder.h"

#if LUMEN_OBS_ENABLED

#include <fstream>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/trace_assembler.h"

namespace lumen::obs {
inline namespace enabled {

FlightRecorder::FlightRecorder(std::size_t event_capacity, SpanBuffer* spans)
    : capacity_(event_capacity == 0 ? kDefaultEventCapacity : event_capacity),
      spans_(spans) {
  ring_.reserve(capacity_);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder instance;
  return instance;
}

void FlightRecorder::record_event(const RouteEvent& event) {
  bool overwrote = false;
  {
    const std::scoped_lock lock(mutex_);
    ++emitted_;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
      next_ = (next_ + 1) % capacity_;
      overwrote = true;
    }
  }
  if (overwrote) {
    static Counter& events_dropped_counter =
        Registry::global().counter("lumen.obs.events_dropped");
    events_dropped_counter.add();
  }
}

std::vector<RouteEvent> FlightRecorder::events() const {
  const std::scoped_lock lock(mutex_);
  std::vector<RouteEvent> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_).
  for (std::size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  return out;
}

std::uint64_t FlightRecorder::events_dropped() const {
  const std::scoped_lock lock(mutex_);
  return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
}

std::string FlightRecorder::dump_string() const {
  std::string out;
  for (const CausalSpanRecord& span : spans_->snapshot()) {
    out += "{\"type\":\"span\",";
    out += causal_span_to_json(span).substr(1);  // drop the leading '{'
    out += '\n';
  }
  for (const RouteEvent& event : events()) {
    out += "{\"type\":\"route_event\",";
    out += route_event_to_json(event).substr(1);
    out += '\n';
  }
  return out;
}

bool FlightRecorder::dump(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << dump_string();
  out.flush();
  return static_cast<bool>(out);
}

std::string FlightRecorder::trigger_dump(
    const std::string& dir, const std::string& tag,
    const std::vector<std::string>& extra_lines) const {
  std::string safe;
  safe.reserve(tag.size());
  for (const char c : tag) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    safe += ok ? c : '_';
  }
  if (safe.empty()) safe = "dump";
  std::string path = dir.empty() ? safe : dir + "/" + safe;
  path += ".jsonl";
  std::string contents;
  for (const std::string& line : extra_lines) {
    contents += line;
    contents += '\n';
  }
  contents += dump_string();
  {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return {};
    out << contents;
    out.flush();
    if (!out) return {};
  }
  static Counter& dumps_counter =
      Registry::global().counter("lumen.obs.flight_dumps");
  dumps_counter.add();
  return path;
}

void FlightRecorder::clear() {
  const std::scoped_lock lock(mutex_);
  ring_.clear();
  next_ = 0;
  emitted_ = 0;
}

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
