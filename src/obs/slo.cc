#include "obs/slo.h"

#include "obs/wire/wire_encoder.h"

namespace lumen::obs {

// Compiled in both build modes: the snapshot struct is passive data, and
// obs-off binaries (lumen_top, lumen_collect) still serialize decoded
// snapshots received over the wire.
std::string pump_snapshot_to_json(const PumpSnapshot& snapshot) {
  std::string out = "{\"tick\":" + std::to_string(snapshot.tick);
  out += ",\"uptime_seconds\":" +
         detail::fmt_double_exact(snapshot.uptime_seconds);
  for (const auto& [name, value] : snapshot.counters) {
    out += ",\"c:";
    out += detail::json_escape(name);
    out += "\":" + std::to_string(value);
  }
  for (const auto& [name, delta] : snapshot.counter_deltas) {
    out += ",\"d:";
    out += detail::json_escape(name);
    out += "\":" + std::to_string(delta);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += ",\"g:";
    out += detail::json_escape(name);
    out += "\":" + detail::fmt_double_exact(value);
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    const std::string key = detail::json_escape(name);
    out += ",\"h:" + key + ":count\":" + std::to_string(summary.count);
    out += ",\"h:" + key + ":mean\":" + detail::fmt_double_exact(summary.mean);
    out += ",\"h:" + key + ":p50\":" + detail::fmt_double_exact(summary.p50);
    out += ",\"h:" + key + ":p90\":" + detail::fmt_double_exact(summary.p90);
    out += ",\"h:" + key + ":p99\":" + detail::fmt_double_exact(summary.p99);
    out += ",\"h:" + key + ":max\":" + detail::fmt_double_exact(summary.max);
  }
  for (const auto& sample : snapshot.labeled_counters) {
    const std::string key =
        detail::json_escape(sample.name + '{' + sample.labels + '}');
    out += ",\"c:" + key + "\":" + std::to_string(sample.value);
    out += ",\"d:" + key + "\":" + std::to_string(sample.delta);
  }
  for (const auto& sample : snapshot.labeled_gauges) {
    out += ",\"g:";
    out += detail::json_escape(sample.name + '{' + sample.labels + '}');
    out += "\":" + detail::fmt_double_exact(sample.value);
  }
  for (const auto& sample : snapshot.labeled_histograms) {
    const std::string key =
        detail::json_escape(sample.name + '{' + sample.labels + '}');
    const HistogramSummary& summary = sample.summary;
    out += ",\"h:" + key + ":count\":" + std::to_string(summary.count);
    out += ",\"h:" + key + ":mean\":" + detail::fmt_double_exact(summary.mean);
    out += ",\"h:" + key + ":p50\":" + detail::fmt_double_exact(summary.p50);
    out += ",\"h:" + key + ":p90\":" + detail::fmt_double_exact(summary.p90);
    out += ",\"h:" + key + ":p99\":" + detail::fmt_double_exact(summary.p99);
    out += ",\"h:" + key + ":max\":" + detail::fmt_double_exact(summary.max);
    out += ",\"h:" + key + ":exemplar\":" + std::to_string(sample.exemplar);
  }
  for (const auto& entry : snapshot.profile) {
    const std::string key = detail::json_escape(entry.stack);
    out += ",\"p:" + key + ":n\":" + std::to_string(entry.samples);
    out += ",\"p:" + key + ":self\":" + std::to_string(entry.self_ns);
    out += ",\"p:" + key + ":total\":" + std::to_string(entry.total_ns);
  }
  out += ",\"alerts\":" + std::to_string(snapshot.alerts.size());
  out += '}';
  return out;
}

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <algorithm>
#include <fstream>

namespace lumen::obs {
inline namespace enabled {

namespace {

const Counter* find_counter(
    const std::vector<std::pair<std::string, const Counter*>>& entries,
    const std::string& name) {
  for (const auto& [n, c] : entries)
    if (n == name) return c;
  return nullptr;
}

const LatencyHistogram* find_histogram(
    const std::vector<std::pair<std::string, const LatencyHistogram*>>&
        entries,
    const std::string& name) {
  for (const auto& [n, h] : entries)
    if (n == name) return h;
  return nullptr;
}

/// Extra JSONL lines attached to a fresh breach dump: one "breach" line
/// naming the worst labeled child of the breached metric (highest p99 —
/// the offending tenant/shard) with the exemplar trace ids retained in
/// its tail latency buckets, then one "profile" line per sampled stage
/// stack, so the dump answers both "who" and "where the time went".
std::vector<std::string> breach_context_lines(Registry& registry,
                                              const PumpSnapshot& snapshot,
                                              const AlertEvent& alert) {
  std::string labels;
  const LatencyHistogram* offender = nullptr;
  double worst_p99 = -1.0;
  for (const auto& [name, family] : registry.labeled_histogram_entries()) {
    if (name != alert.metric) continue;
    for (const auto& [child_labels, child] : family->entries()) {
      const double p99 = child->percentile(0.99);
      if (child->count() > 0 && p99 > worst_p99) {
        worst_p99 = p99;
        labels = child_labels;
        offender = child;
      }
    }
  }
  if (offender == nullptr)
    offender = find_histogram(registry.histogram_entries(), alert.metric);

  // Exemplars from the buckets at/above the offender's p99 (the traces
  // that lived through the breach), falling back to its worst retained
  // exemplar so a breach line is never trace-less when one exists.
  std::string exemplars;
  if (offender != nullptr) {
    const int from = LatencyHistogram::bucket_of(
        static_cast<std::uint64_t>(offender->percentile(0.99)));
    for (int b = from; b < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t id = offender->exemplar(b);
      if (id == 0) continue;
      if (!exemplars.empty()) exemplars.push_back(',');
      exemplars += std::to_string(id);
    }
    if (exemplars.empty() && offender->worst_exemplar() != 0)
      exemplars = std::to_string(offender->worst_exemplar());
  }

  std::vector<std::string> lines;
  std::string line = "{\"type\":\"breach\",\"rule\":\"";
  line += detail::json_escape(alert.rule);
  line += "\",\"metric\":\"";
  line += detail::json_escape(alert.metric);
  line += "\",\"labels\":\"";
  line += detail::json_escape(labels);
  line += "\",\"value\":" + detail::fmt_double_exact(alert.value);
  line += ",\"threshold\":" + detail::fmt_double_exact(alert.threshold);
  line += ",\"exemplars\":\"" + exemplars + "\"}";
  lines.push_back(std::move(line));
  for (const ProfileEntry& entry : snapshot.profile)
    lines.push_back(profile_entry_to_json(entry));
  return lines;
}

}  // namespace

void SloWatchdog::add_rule(SloRule rule) {
  const std::scoped_lock lock(mutex_);
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

std::size_t SloWatchdog::num_rules() const {
  const std::scoped_lock lock(mutex_);
  return rules_.size();
}

std::vector<AlertEvent> SloWatchdog::evaluate(const Registry& registry) {
  const auto counters = registry.counter_entries();
  const auto histograms = registry.histogram_entries();

  const std::scoped_lock lock(mutex_);
  std::vector<AlertEvent> alerts;
  for (RuleState& state : rules_) {
    const SloRule& rule = state.rule;
    double value = 0.0;
    bool have_value = true;

    switch (rule.kind) {
      case SloRule::Kind::kCounterValue: {
        const Counter* c = find_counter(counters, rule.metric);
        const std::uint64_t now = c != nullptr ? c->value() : 0;
        if (rule.windowed) {
          const std::uint64_t delta =
              now >= state.prev_metric ? now - state.prev_metric : 0;
          state.prev_metric = now;
          if (!state.primed) {
            // The first window has no baseline; observe only.
            state.primed = true;
            have_value = false;
          }
          value = static_cast<double>(delta);
        } else {
          value = static_cast<double>(now);
        }
        break;
      }
      case SloRule::Kind::kCounterRatio: {
        const Counter* num = find_counter(counters, rule.metric);
        const Counter* den = find_counter(counters, rule.denominator);
        const std::uint64_t num_now = num != nullptr ? num->value() : 0;
        const std::uint64_t den_now = den != nullptr ? den->value() : 0;
        std::uint64_t dn = num_now, dd = den_now;
        if (rule.windowed) {
          dn = num_now >= state.prev_metric ? num_now - state.prev_metric : 0;
          dd = den_now >= state.prev_denominator
                   ? den_now - state.prev_denominator
                   : 0;
          state.prev_metric = num_now;
          state.prev_denominator = den_now;
          if (!state.primed) {
            state.primed = true;
            have_value = false;
          }
        }
        // An empty window holds no evidence either way.
        if (dd == 0) have_value = false;
        value = dd == 0 ? 0.0
                        : static_cast<double>(dn) / static_cast<double>(dd);
        break;
      }
      case SloRule::Kind::kHistogramPercentile: {
        const LatencyHistogram* h = find_histogram(histograms, rule.metric);
        if (h == nullptr || h->count() == 0) have_value = false;
        value = h != nullptr ? h->percentile(rule.quantile) : 0.0;
        break;
      }
    }

    const bool breach =
        have_value && (rule.cmp == SloRule::Cmp::kGreater
                           ? value > rule.threshold
                           : value < rule.threshold);
    if (breach == state.breaching) continue;
    // Edge: resolve only on a tick with evidence; a window with no data
    // leaves the rule in its previous state.
    if (!breach && !have_value) continue;
    state.breaching = breach;
    AlertEvent alert;
    alert.rule = rule.name;
    alert.metric = rule.metric;
    alert.value = value;
    alert.threshold = rule.threshold;
    alert.resolved = !breach;
    alerts.push_back(std::move(alert));
  }
  return alerts;
}

bool SloWatchdog::breaching(const std::string& rule) const {
  const std::scoped_lock lock(mutex_);
  for (const RuleState& state : rules_)
    if (state.rule.name == rule) return state.breaching;
  return false;
}

MetricsPump::MetricsPump(Registry& registry, PumpOptions options)
    : registry_(registry),
      options_(std::move(options)),
      born_(std::chrono::steady_clock::now()) {}

MetricsPump::~MetricsPump() { stop(); }

PumpSnapshot MetricsPump::tick() {
  const std::scoped_lock lock(tick_mutex_);
  PumpSnapshot snapshot;
  snapshot.tick = ++tick_count_;
  snapshot.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - born_)
          .count();

  for (const auto& [name, counter] : registry_.counter_entries())
    snapshot.counters.emplace_back(name, counter->value());
  snapshot.counter_deltas.reserve(snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    std::uint64_t prev = 0;
    const auto it = std::lower_bound(
        prev_counters_.begin(), prev_counters_.end(), name,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != prev_counters_.end() && it->first == name) prev = it->second;
    snapshot.counter_deltas.emplace_back(name,
                                         value >= prev ? value - prev : 0);
  }
  prev_counters_ = snapshot.counters;  // sorted (registry order)

  for (const auto& [name, gauge] : registry_.gauge_entries())
    snapshot.gauges.emplace_back(name, gauge->value());

  for (const auto& [name, histogram] : registry_.histogram_entries())
    snapshot.histograms.emplace_back(name, histogram->summary());

  for (const auto& [name, family] : registry_.labeled_counter_entries()) {
    for (const auto& [labels, child] : family->entries()) {
      LabeledCounterSample sample;
      sample.name = name;
      sample.labels = labels;
      sample.value = child->value();
      const std::string key = name + '{' + labels + '}';
      const auto it = prev_labeled_.find(key);
      const std::uint64_t prev = it != prev_labeled_.end() ? it->second : 0;
      sample.delta = sample.value >= prev ? sample.value - prev : 0;
      prev_labeled_[key] = sample.value;
      snapshot.labeled_counters.push_back(std::move(sample));
    }
  }
  for (const auto& [name, family] : registry_.labeled_gauge_entries()) {
    for (const auto& [labels, child] : family->entries()) {
      LabeledGaugeSample sample;
      sample.name = name;
      sample.labels = labels;
      sample.value = child->value();
      snapshot.labeled_gauges.push_back(std::move(sample));
    }
  }
  for (const auto& [name, family] : registry_.labeled_histogram_entries()) {
    for (const auto& [labels, child] : family->entries()) {
      LabeledHistogramSample sample;
      sample.name = name;
      sample.labels = labels;
      sample.summary = child->summary();
      sample.exemplar = child->worst_exemplar();
      snapshot.labeled_histograms.push_back(std::move(sample));
    }
  }

  if (options_.profiler != nullptr)
    snapshot.profile = options_.profiler->snapshot().entries;

  if (options_.watchdog != nullptr) {
    snapshot.alerts = options_.watchdog->evaluate(registry_);
    for (AlertEvent& alert : snapshot.alerts) {
      alert.tick = snapshot.tick;
      if (!alert.resolved && options_.recorder != nullptr) {
        alert.dump_path = options_.recorder->trigger_dump(
            options_.dump_dir,
            "slo-" + alert.rule + "-tick" + std::to_string(snapshot.tick),
            breach_context_lines(registry_, snapshot, alert));
      }
    }
    if (!snapshot.alerts.empty()) {
      static Counter& alerts_counter =
          Registry::global().counter("lumen.obs.alerts");
      alerts_counter.add(snapshot.alerts.size());
    }
  }

  if (!options_.snapshot_path.empty()) {
    std::ofstream out(options_.snapshot_path, std::ios::app);
    if (out) {
      out << pump_snapshot_to_json(snapshot) << '\n';
      for (const AlertEvent& alert : snapshot.alerts)
        out << alert_to_json(alert) << '\n';
    }
  }

  if (options_.wire != nullptr) options_.wire->export_snapshot(snapshot);

  if (options_.on_snapshot) options_.on_snapshot(snapshot);
  return snapshot;
}

void MetricsPump::start() {
  const std::scoped_lock lock(state_mutex_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { thread_main(); });
}

void MetricsPump::stop() {
  std::thread to_join;
  {
    const std::scoped_lock lock(state_mutex_);
    stop_requested_ = true;
    cv_.notify_all();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
}

bool MetricsPump::running() const {
  const std::scoped_lock lock(state_mutex_);
  return thread_.joinable();
}

std::uint64_t MetricsPump::ticks() const {
  const std::scoped_lock lock(tick_mutex_);
  return tick_count_;
}

void MetricsPump::thread_main() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds > 0.0 ? options_.interval_seconds : 1.0);
  std::unique_lock lock(state_mutex_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; }))
      break;
    lock.unlock();
    (void)tick();
    lock.lock();
  }
}

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
