// Scoped stage timing: RAII trace spans + a process-wide ring buffer.
//
// A routing call decomposes into named stages by wrapping each stage in a
// TraceSpan:
//
//   {
//     obs::TraceSpan span("route.dijkstra");
//     ... run the search ...
//   }                       // span closes, one TraceRecord lands in the
//                           // collector's ring buffer
//
// Spans nest: each record carries the nesting depth of its thread at open
// time, so a flame-style decomposition (aux_build -> dijkstra ->
// path_extract under route.semilightpath) can be reconstructed from the
// buffer.  The collector is a fixed-capacity ring — old records are
// overwritten, never reallocated — so tracing is safe to leave on in
// long-running processes.  With LUMEN_OBS_DISABLED everything here is a
// no-op (see obs.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/obs.h"

namespace lumen::obs {

/// One closed span.  `name` must point to storage outliving the collector
/// (string literals in practice).
struct TraceRecord {
  const char* name = nullptr;
  /// Steady-clock timestamp of span open, in ns (monotonic, arbitrary
  /// epoch — only differences are meaningful).
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Nesting depth of the opening thread at open time (0 = root span).
  std::uint32_t depth = 0;
};

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <chrono>
#include <mutex>

namespace lumen::obs {
inline namespace enabled {

/// Fixed-capacity ring buffer of TraceRecords.  emit() takes a mutex;
/// span open/close touch only the clock and a thread-local depth counter.
class TraceCollector {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceCollector(std::size_t capacity = kDefaultCapacity);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  static TraceCollector& global();

  void emit(const TraceRecord& record);

  /// The retained records, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Records emitted over the collector's lifetime.
  [[nodiscard]] std::uint64_t total_emitted() const;
  /// Records overwritten by ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceRecord> ring_;
  std::size_t next_ = 0;       // ring write cursor
  std::uint64_t emitted_ = 0;  // lifetime total
};

/// RAII stage timer.  Opens on construction, emits one TraceRecord into
/// the collector on close() or destruction (whichever comes first).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     TraceCollector* collector = &TraceCollector::global());
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Seconds since the span opened (works before and after close()).
  [[nodiscard]] double elapsed_seconds() const noexcept;

  /// Emits the record now; later close()/destruction is a no-op.
  void close();

  /// Nesting depth the span opened at (0 = root).
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }

 private:
  using clock = std::chrono::steady_clock;

  const char* name_;
  TraceCollector* collector_;
  clock::time_point start_;
  std::uint32_t depth_;
  bool open_ = true;
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: see the enabled definition for semantics.
class TraceCollector {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  explicit TraceCollector(std::size_t = kDefaultCapacity) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;
  static TraceCollector& global() {
    static TraceCollector instance;
    return instance;
  }
  void emit(const TraceRecord&) {}
  [[nodiscard]] std::vector<TraceRecord> snapshot() const { return {}; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] std::size_t size() const { return 0; }
  [[nodiscard]] std::uint64_t total_emitted() const { return 0; }
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  void clear() {}
};

/// No-op stand-in: never reads the clock.
class TraceSpan {
 public:
  explicit TraceSpan(const char*,
                     TraceCollector* = &TraceCollector::global()) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  [[nodiscard]] double elapsed_seconds() const noexcept { return 0.0; }
  void close() {}
  [[nodiscard]] std::uint32_t depth() const noexcept { return 0; }
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
