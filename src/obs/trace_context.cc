#include "obs/trace_context.h"

#if LUMEN_OBS_ENABLED

#include <atomic>

#include "obs/profiler.h"

namespace lumen::obs {
inline namespace enabled {

namespace {

// Process-wide id allocators.  Ids start at 1: 0 is the "no trace" /
// "root span" sentinel in TraceContext and CausalSpanRecord.
std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::uint64_t> g_next_span_id{1};

thread_local TraceContext t_ambient{};

std::uint64_t new_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}
std::uint64_t new_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceContext current_trace_context() noexcept { return t_ambient; }

CausalSpan::CausalSpan(const char* name, TraceContext parent,
                       SpanBuffer* buffer)
    : name_(name), buffer_(buffer), start_(clock::now()) {
  if (parent.valid()) {
    trace_id_ = parent.trace_id;
    parent_span_id_ = parent.parent_span_id;
  } else {
    trace_id_ = new_trace_id();
    parent_span_id_ = 0;
  }
  span_id_ = new_span_id();
}

CausalSpan::CausalSpan(const char* name, SpanBuffer* buffer)
    : CausalSpan(name, t_ambient, buffer) {
  ambient_ = true;
  previous_ = t_ambient;
  t_ambient = context();
  // Ambient spans double as profiler frames (see obs/profiler.h); the
  // matching close hook fires in close().
  Profiler::global().on_span_open(name);
}

CausalSpan::~CausalSpan() { close(); }

void CausalSpan::close() {
  if (!open_) return;
  open_ = false;
  if (ambient_) t_ambient = previous_;
  CausalSpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_span_id = parent_span_id_;
  record.name = name_;
  record.node = node_;
  const auto since_epoch = start_.time_since_epoch();
  record.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count());
  record.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           start_)
          .count());
  record.vt_begin = vt_begin_;
  record.vt_end = vt_end_;
  record.attr0 = attr0_;
  record.attr1 = attr1_;
  buffer_->emit(record);
  if (ambient_) Profiler::global().on_span_close(record.duration_ns);
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) noexcept
    : previous_(t_ambient) {
  t_ambient = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_ambient = previous_; }

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
