// lumen wire telemetry: the frame format (version 1).
//
// An IPFIX-shaped, template-based binary export protocol.  A frame is
// one UDP datagram (or one loopback buffer):
//
//   message header (16 bytes, all integers big-endian)
//     u16 version      kWireVersion (1)
//     u16 length       total frame bytes, header included
//     u32 sequence     per-exporter frame counter (gap detection)
//     u32 export_tick  pump tick at export time (diagnostic)
//     u32 domain       observation-domain id (one per exporting process)
//   followed by sets until `length` is exhausted:
//     u16 set_id       kTemplateSetId announces layouts; >= kMinDataSetId
//                      carries data records shaped by that template id
//     u16 set_length   set bytes, set header included
//
// A template record inside a template set:
//     u16 template_id, u16 field_count,
//     field_count x (u16 field_id, u16 field_length)
// where field_length kVarLen (0xFFFF) means a u16-length-prefixed string
// and 1/2/4/8 mean a big-endian unsigned integer of that width (fields
// carrying doubles use width 8 and travel as IEEE-754 bit patterns).
//
// Data records follow their template's field list back to back; a set
// holds as many records as fit its length.  Templates describe layouts
// once (and are re-announced periodically, UDP being lossy); data
// records reference them by set id — the collector buffers data sets
// that arrive before their template and replays them once it shows up.
//
// The templates below are the protocol's builtin vocabulary: counter /
// gauge / histogram-summary samples and snapshot boundaries (the
// MetricsPump feed), SLO alerts, and flight-recorder route events.  A
// decoder skips unknown field ids inside a known template, so appending
// fields to a template is a compatible change; new record kinds take a
// fresh template id.
//
// Everything in this header is passive data — compiled identically with
// and without LUMEN_OBS_DISABLED, so an obs-off collector still decodes
// frames produced by an instrumented peer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lumen::obs::wire {

inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kSetHeaderBytes = 4;

/// Set id announcing template records (IPFIX uses 2 as well).
inline constexpr std::uint16_t kTemplateSetId = 2;
/// Smallest set id that names a template (= smallest template id).
inline constexpr std::uint16_t kMinDataSetId = 256;

/// Variable-length marker in a template field spec.
inline constexpr std::uint16_t kVarLen = 0xFFFF;

/// Builtin template ids.
enum TemplateId : std::uint16_t {
  kCounterTemplate = 256,     ///< one registry counter sample
  kGaugeTemplate = 257,       ///< one registry gauge sample
  kHistogramTemplate = 258,   ///< one histogram summary sample
  kSnapshotTemplate = 259,    ///< snapshot boundary (tick, uptime)
  kAlertTemplate = 260,       ///< one SLO alert transition
  kRouteEventTemplate = 261,  ///< one flight-recorder route event
  /// One labeled counter/gauge child (kFKind discriminates).
  kLabeledSeriesTemplate = 262,
  /// One labeled histogram child + its worst-bucket exemplar trace id.
  kLabeledHistogramTemplate = 263,
  /// One aggregated profiler stage stack.
  kProfileTemplate = 264,
};

/// Field ids (the protocol's information elements).
enum FieldId : std::uint16_t {
  kFName = 1,      ///< instrument name (var)
  kFValueU64 = 2,  ///< counter lifetime value (u64)
  kFDeltaU64 = 3,  ///< counter delta since previous tick (u64)
  kFValueF64 = 4,  ///< gauge level / alert value (f64)
  kFCount = 5,     ///< histogram count (u64)
  kFMean = 6,      ///< f64
  kFMin = 7,       ///< f64
  kFMax = 8,       ///< f64
  kFP50 = 9,       ///< f64
  kFP90 = 10,      ///< f64
  kFP99 = 11,      ///< f64

  kFTick = 20,       ///< pump tick (u64)
  kFUptime = 21,     ///< uptime seconds (f64)
  kFRule = 22,       ///< alert rule name (var)
  kFMetric = 23,     ///< alert metric name (var)
  kFThreshold = 24,  ///< f64
  kFResolved = 25,   ///< u8 (0 breach, 1 resolve)
  kFDumpPath = 26,   ///< flight-recorder dump path (var)

  kFSequence = 30,       ///< route-event sequence (u64)
  kFSource = 31,         ///< u32
  kFTarget = 32,         ///< u32
  kFPolicy = 33,         ///< var
  kFHeap = 34,           ///< var
  kFOutcome = 35,        ///< var
  kFCost = 36,           ///< f64
  kFHops = 37,           ///< u32
  kFConversions = 38,    ///< u32
  kFAuxNodes = 39,       ///< u64
  kFAuxLinks = 40,       ///< u64
  kFRelaxations = 41,    ///< u64
  kFHeapPops = 42,       ///< u64
  kFBuildSeconds = 43,   ///< f64
  kFSearchSeconds = 44,  ///< f64
  kFTraceId = 45,        ///< u64

  kFKind = 46,      ///< u8: labeled series kind (0 counter, 1 gauge)
  kFLabels = 47,    ///< canonical TagSet labels "k=v,k=v" (var)
  kFStack = 48,     ///< ';'-joined profile stage stack (var)
  kFSamples = 49,   ///< profile weighted sample count (u64)
  kFSelfNs = 50,    ///< profile weighted self nanoseconds (u64)
  kFTotalNs = 51,   ///< profile weighted total nanoseconds (u64)
  kFExemplar = 52,  ///< histogram worst-bucket exemplar trace id (u64)
};

/// One field spec of a template: (field id, encoded length).
struct FieldSpec {
  std::uint16_t id;
  std::uint16_t length;  // 1/2/4/8, or kVarLen
};

/// The builtin template layouts, exactly as the exporter announces them.
inline constexpr FieldSpec kCounterFields[] = {
    {kFName, kVarLen}, {kFValueU64, 8}, {kFDeltaU64, 8}};
inline constexpr FieldSpec kGaugeFields[] = {{kFName, kVarLen},
                                             {kFValueF64, 8}};
inline constexpr FieldSpec kHistogramFields[] = {
    {kFName, kVarLen}, {kFCount, 8}, {kFMean, 8}, {kFMin, 8},
    {kFMax, 8},        {kFP50, 8},   {kFP90, 8},  {kFP99, 8}};
inline constexpr FieldSpec kSnapshotFields[] = {{kFTick, 8}, {kFUptime, 8}};
inline constexpr FieldSpec kAlertFields[] = {
    {kFRule, kVarLen},  {kFMetric, kVarLen}, {kFValueF64, 8},
    {kFThreshold, 8},   {kFResolved, 1},     {kFTick, 8},
    {kFDumpPath, kVarLen}};
inline constexpr FieldSpec kRouteEventFields[] = {
    {kFSequence, 8},       {kFSource, 4},          {kFTarget, 4},
    {kFPolicy, kVarLen},   {kFHeap, kVarLen},      {kFOutcome, kVarLen},
    {kFCost, 8},           {kFHops, 4},            {kFConversions, 4},
    {kFAuxNodes, 8},       {kFAuxLinks, 8},        {kFRelaxations, 8},
    {kFHeapPops, 8},       {kFBuildSeconds, 8},    {kFSearchSeconds, 8},
    {kFTraceId, 8}};
inline constexpr FieldSpec kLabeledSeriesFields[] = {
    {kFName, kVarLen}, {kFLabels, kVarLen}, {kFKind, 1},
    {kFValueU64, 8},   {kFDeltaU64, 8},     {kFValueF64, 8}};
inline constexpr FieldSpec kLabeledHistogramFields[] = {
    {kFName, kVarLen}, {kFLabels, kVarLen}, {kFCount, 8},
    {kFMean, 8},       {kFMin, 8},          {kFMax, 8},
    {kFP50, 8},        {kFP90, 8},          {kFP99, 8},
    {kFExemplar, 8}};
inline constexpr FieldSpec kProfileFields[] = {
    {kFStack, kVarLen}, {kFSamples, 8}, {kFSelfNs, 8}, {kFTotalNs, 8}};

}  // namespace lumen::obs::wire
