// WireExporter: encodes telemetry into wire frames and ships them.
//
// The producing half of the wire protocol (wire_format.h).  Feed it
// PumpSnapshots (each one becomes a snapshot-boundary record followed by
// one record per counter / gauge / histogram / alert, split across as
// many frames as the transport's datagram ceiling requires) and
// flight-recorder RouteEvents.  Template sets describing the record
// layouts lead the very first frame and are re-announced every
// `template_interval` snapshots — the periodic resend is what makes a
// lossy UDP path self-healing: a collector that missed the first
// announcement locks on at the next one.
//
// Wiring into a MetricsPump is one pointer:
//
//   obs::wire::UdpWireTransport udp(9901);
//   obs::wire::WireExporter wire(udp);
//   obs::PumpOptions options;
//   options.wire = &wire;                 // every tick -> frames
//   obs::MetricsPump pump(obs::Registry::global(), options);
//
// Sending never blocks on the collector and never throws; lost frames
// are counted here and detected (by sequence gap) there.  Compiled in
// both build modes: the exporter serializes whatever snapshot it is
// handed, instrumented build or not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/route_event.h"
#include "obs/slo.h"
#include "obs/wire/wire_format.h"
#include "obs/wire/wire_transport.h"

namespace lumen::obs::wire {

struct WireExporterOptions {
  /// Observation-domain id stamped on every frame; give each exporting
  /// process its own so one collector can tell their streams apart.
  std::uint32_t domain = 1;
  /// Re-announce templates every N snapshots (0 = announce once, never
  /// resend — loopback tests and reliable transports).
  std::uint32_t template_interval = 16;
};

struct WireExporterStats {
  std::uint64_t frames_sent = 0;      ///< handed to the transport
  std::uint64_t frames_lost = 0;      ///< transport reported failure
  std::uint64_t bytes_sent = 0;       ///< sum of frame sizes
  std::uint64_t records_sent = 0;     ///< data records encoded
  std::uint64_t records_dropped = 0;  ///< too large for any frame
  std::uint64_t template_sets = 0;    ///< template announcements
  std::uint64_t snapshots = 0;        ///< export_snapshot calls
};

class WireExporter {
 public:
  explicit WireExporter(WireTransport& transport,
                        WireExporterOptions options = {});
  WireExporter(const WireExporter&) = delete;
  WireExporter& operator=(const WireExporter&) = delete;

  /// Encodes one pump snapshot: a snapshot-boundary record, then every
  /// counter, gauge, histogram summary, and alert, over as many frames
  /// as needed.  The final frame is sent before returning (a snapshot
  /// never sits half-exported in the buffer).
  void export_snapshot(const PumpSnapshot& snapshot);

  /// Encodes route events (one record each); sends what it buffered.
  void export_route_events(std::span<const RouteEvent> events);

  /// Convenience: exports the recorder's retained event ring.  Defined
  /// inline because FlightRecorder is a per-build-mode type (inline
  /// namespaces): each including TU binds to its own mode's recorder,
  /// while the out-of-line codec below stays mode-independent.
  void export_flight_recorder(const FlightRecorder& recorder) {
    const std::vector<RouteEvent> events = recorder.events();
    export_route_events(std::span<const RouteEvent>(events));
  }

  /// Forces a template announcement at the start of the next frame —
  /// the mid-stream resend a collector joining late relies on.
  void resend_templates() { templates_due_ = true; }

  [[nodiscard]] const WireExporterStats& stats() const { return stats_; }
  /// Sequence number the next frame will carry.
  [[nodiscard]] std::uint32_t next_sequence() const { return sequence_; }

 private:
  void begin_frame();
  void finish_frame();  ///< patches lengths, sends, clears the buffer
  void append_template_set();
  /// Opens (or continues) the data set for `template_id`; `record` is
  /// the encoded record body.  Splits to a fresh frame when full.
  void append_record(std::uint16_t template_id,
                     std::span<const std::byte> record);
  void close_open_set();

  WireTransport& transport_;
  WireExporterOptions options_;
  WireExporterStats stats_;

  std::vector<std::byte> frame_;     // frame under construction
  std::vector<std::byte> scratch_;   // one record being encoded
  std::size_t open_set_offset_ = 0;  // 0 = no open set
  std::uint16_t open_set_id_ = 0;
  std::uint32_t sequence_ = 0;
  std::uint32_t export_tick_ = 0;
  bool frame_has_data_ = false;  // frame carries >= 1 data record
  bool templates_due_ = true;    // very first frame announces
};

}  // namespace lumen::obs::wire
