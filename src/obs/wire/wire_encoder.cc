#include "obs/wire/wire_encoder.h"

#include <algorithm>

#include "util/byteorder.h"

namespace lumen::obs::wire {

namespace {

/// Offset of the u16 frame-length field inside the message header.
constexpr std::size_t kFrameLengthOffset = 2;
/// Frame split floor/ceiling.  The floor keeps a pathological transport
/// from forcing one record per frame below any useful size; the ceiling
/// stays under the u16 length field with headroom for one oversized
/// record's set header.
constexpr std::size_t kMinFrameBytes = 128;
constexpr std::size_t kMaxFrameBytes = 60000;

void append_one_template(ByteWriter& writer, std::uint16_t template_id,
                         std::span<const FieldSpec> fields) {
  writer.u16(template_id);
  writer.u16(static_cast<std::uint16_t>(fields.size()));
  for (const FieldSpec& field : fields) {
    writer.u16(field.id);
    writer.u16(field.length);
  }
}

}  // namespace

WireExporter::WireExporter(WireTransport& transport,
                           WireExporterOptions options)
    : transport_(transport), options_(options) {}

void WireExporter::begin_frame() {
  frame_.clear();
  open_set_offset_ = 0;
  open_set_id_ = 0;
  frame_has_data_ = false;
  ByteWriter writer(frame_);
  writer.u16(kWireVersion);
  writer.u16(0);  // total length, patched in finish_frame
  writer.u32(sequence_);
  writer.u32(export_tick_);
  writer.u32(options_.domain);
  if (templates_due_) {
    append_template_set();
    templates_due_ = false;
  }
}

void WireExporter::close_open_set() {
  if (open_set_offset_ == 0) return;  // sets never start at the header
  ByteWriter writer(frame_);
  writer.patch_u16(
      open_set_offset_ + 2,
      static_cast<std::uint16_t>(frame_.size() - open_set_offset_));
  open_set_offset_ = 0;
  open_set_id_ = 0;
}

void WireExporter::finish_frame() {
  if (frame_.empty()) return;
  close_open_set();
  ByteWriter writer(frame_);
  writer.patch_u16(kFrameLengthOffset,
                   static_cast<std::uint16_t>(frame_.size()));
  ++sequence_;  // counts every frame, sent or lost: a sender-side drop
                // surfaces as a collector-side gap like any other loss
  ++stats_.frames_sent;
  stats_.bytes_sent += frame_.size();
  if (!transport_.send(frame_)) ++stats_.frames_lost;
  frame_.clear();
}

void WireExporter::append_template_set() {
  close_open_set();
  const std::size_t set_offset = frame_.size();
  ByteWriter writer(frame_);
  writer.u16(kTemplateSetId);
  writer.u16(0);  // set length, patched below
  append_one_template(writer, kCounterTemplate, kCounterFields);
  append_one_template(writer, kGaugeTemplate, kGaugeFields);
  append_one_template(writer, kHistogramTemplate, kHistogramFields);
  append_one_template(writer, kSnapshotTemplate, kSnapshotFields);
  append_one_template(writer, kAlertTemplate, kAlertFields);
  append_one_template(writer, kRouteEventTemplate, kRouteEventFields);
  append_one_template(writer, kLabeledSeriesTemplate, kLabeledSeriesFields);
  append_one_template(writer, kLabeledHistogramTemplate,
                      kLabeledHistogramFields);
  append_one_template(writer, kProfileTemplate, kProfileFields);
  writer.patch_u16(set_offset + 2,
                   static_cast<std::uint16_t>(frame_.size() - set_offset));
  ++stats_.template_sets;
}

void WireExporter::append_record(std::uint16_t template_id,
                                 std::span<const std::byte> record) {
  // A record that cannot fit even an otherwise-empty frame can never be
  // carried (the set length field would overflow): count it, drop it.
  if (record.size() + kHeaderBytes + kSetHeaderBytes > kMaxFrameBytes) {
    ++stats_.records_dropped;
    return;
  }
  const std::size_t limit = std::clamp(transport_.max_frame_bytes(),
                                       kMinFrameBytes, kMaxFrameBytes);
  if (frame_.empty()) begin_frame();
  const std::size_t need =
      record.size() + (open_set_id_ == template_id ? 0 : kSetHeaderBytes);
  // Split to a fresh frame when full — but only if this frame already
  // carries a record; a fresh frame ships oversized rather than looping.
  if (frame_has_data_ && frame_.size() + need > limit) {
    finish_frame();
    begin_frame();
  }
  if (open_set_id_ != template_id) {
    close_open_set();
    open_set_offset_ = frame_.size();
    open_set_id_ = template_id;
    ByteWriter writer(frame_);
    writer.u16(template_id);
    writer.u16(0);  // set length, patched at close
  }
  ByteWriter writer(frame_);
  writer.bytes(record);
  frame_has_data_ = true;
  ++stats_.records_sent;
}

void WireExporter::export_snapshot(const PumpSnapshot& snapshot) {
  if (options_.template_interval != 0 &&
      stats_.snapshots % options_.template_interval == 0)
    templates_due_ = true;  // periodic re-announce (lossy-path recovery)
  ++stats_.snapshots;
  export_tick_ = static_cast<std::uint32_t>(snapshot.tick);

  // Snapshot boundary first: the collector opens a new snapshot on this
  // record, so everything that follows lands in the right tick.
  scratch_.clear();
  {
    ByteWriter writer(scratch_);
    writer.u64(snapshot.tick);
    writer.f64(snapshot.uptime_seconds);
  }
  append_record(kSnapshotTemplate, scratch_);

  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    const std::uint64_t delta = i < snapshot.counter_deltas.size()
                                    ? snapshot.counter_deltas[i].second
                                    : 0;
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(name);
    writer.u64(value);
    writer.u64(delta);
    append_record(kCounterTemplate, scratch_);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(name);
    writer.f64(value);
    append_record(kGaugeTemplate, scratch_);
  }
  for (const auto& [name, summary] : snapshot.histograms) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(name);
    writer.u64(summary.count);
    writer.f64(summary.mean);
    writer.f64(summary.min);
    writer.f64(summary.max);
    writer.f64(summary.p50);
    writer.f64(summary.p90);
    writer.f64(summary.p99);
    append_record(kHistogramTemplate, scratch_);
  }
  for (const LabeledCounterSample& sample : snapshot.labeled_counters) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(sample.name);
    writer.str(sample.labels);
    writer.u8(0);  // kind: counter
    writer.u64(sample.value);
    writer.u64(sample.delta);
    writer.f64(0.0);
    append_record(kLabeledSeriesTemplate, scratch_);
  }
  for (const LabeledGaugeSample& sample : snapshot.labeled_gauges) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(sample.name);
    writer.str(sample.labels);
    writer.u8(1);  // kind: gauge
    writer.u64(0);
    writer.u64(0);
    writer.f64(sample.value);
    append_record(kLabeledSeriesTemplate, scratch_);
  }
  for (const LabeledHistogramSample& sample : snapshot.labeled_histograms) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(sample.name);
    writer.str(sample.labels);
    writer.u64(sample.summary.count);
    writer.f64(sample.summary.mean);
    writer.f64(sample.summary.min);
    writer.f64(sample.summary.max);
    writer.f64(sample.summary.p50);
    writer.f64(sample.summary.p90);
    writer.f64(sample.summary.p99);
    writer.u64(sample.exemplar);
    append_record(kLabeledHistogramTemplate, scratch_);
  }
  for (const ProfileEntry& entry : snapshot.profile) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(entry.stack);
    writer.u64(entry.samples);
    writer.u64(entry.self_ns);
    writer.u64(entry.total_ns);
    append_record(kProfileTemplate, scratch_);
  }
  for (const AlertEvent& alert : snapshot.alerts) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.str(alert.rule);
    writer.str(alert.metric);
    writer.f64(alert.value);
    writer.f64(alert.threshold);
    writer.u8(alert.resolved ? 1 : 0);
    writer.u64(alert.tick);
    writer.str(alert.dump_path);
    append_record(kAlertTemplate, scratch_);
  }
  finish_frame();  // a snapshot never sits half-exported
}

void WireExporter::export_route_events(std::span<const RouteEvent> events) {
  for (const RouteEvent& event : events) {
    scratch_.clear();
    ByteWriter writer(scratch_);
    writer.u64(event.sequence);
    writer.u32(event.source);
    writer.u32(event.target);
    writer.str(event.policy);
    writer.str(event.heap);
    writer.str(event.outcome);
    writer.f64(event.cost);
    writer.u32(event.hops);
    writer.u32(event.conversions);
    writer.u64(event.aux_nodes);
    writer.u64(event.aux_links);
    writer.u64(event.relaxations);
    writer.u64(event.heap_pops);
    writer.f64(event.build_seconds);
    writer.f64(event.search_seconds);
    writer.u64(event.trace_id);
    append_record(kRouteEventTemplate, scratch_);
  }
  finish_frame();
}

}  // namespace lumen::obs::wire
