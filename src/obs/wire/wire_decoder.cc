#include "obs/wire/wire_decoder.h"

#include <bit>
#include <utility>

namespace lumen::obs::wire {

namespace {

/// Field lengths a template may legally declare.
bool valid_field_length(std::uint16_t length) {
  return length == 1 || length == 2 || length == 4 || length == 8 ||
         length == kVarLen;
}

/// One decoded field: fixed-width fields land in `u` (doubles as the
/// IEEE-754 bit pattern), variable-length fields in `s`.
struct FieldValue {
  std::uint64_t u = 0;
  std::string s;
};

/// Reads one field per its template spec.  Returns false on truncation.
bool read_field(lumen::ByteReader& reader, const FieldSpec& spec,
                FieldValue& out) {
  if (spec.length == kVarLen) {
    out.s = reader.str();
  } else {
    switch (spec.length) {
      case 1: out.u = reader.u8(); break;
      case 2: out.u = reader.u16(); break;
      case 4: out.u = reader.u32(); break;
      default: out.u = reader.u64(); break;
    }
  }
  return reader.ok();
}

double as_f64(const FieldValue& v) { return std::bit_cast<double>(v.u); }

}  // namespace

WireDecoder::WireDecoder(WireDecoderOptions options) : options_(options) {}

bool WireDecoder::decode_frame(std::span<const std::byte> frame) {
  ++stats_.frames_received;
  const auto reject = [this] {
    ++stats_.frames_rejected;
    return false;
  };

  lumen::ByteReader reader(frame);
  const std::uint16_t version = reader.u16();
  const std::uint16_t length = reader.u16();
  const std::uint32_t sequence = reader.u32();
  reader.u32();  // export_tick: diagnostic only
  const std::uint32_t domain_id = reader.u32();
  if (!reader.ok() || version != kWireVersion) return reject();
  // The length field must name this exact datagram: shorter means the
  // frame was truncated in flight, longer means it was padded or spliced
  // — both are corruption, not data.
  if (length != frame.size()) return reject();

  DomainState& domain = domains_[domain_id];
  // Sequence accounting happens on any frame whose header parsed: a
  // frame that later proves malformed still consumed a sequence number
  // at the exporter.
  note_sequence(domain, sequence);

  while (reader.ok() && reader.remaining() > 0) {
    if (reader.remaining() < kSetHeaderBytes) return reject();
    const std::uint16_t set_id = reader.u16();
    const std::uint16_t set_length = reader.u16();
    if (set_length < kSetHeaderBytes ||
        set_length - kSetHeaderBytes > reader.remaining())
      return reject();
    const std::span<const std::byte> payload =
        reader.bytes(set_length - kSetHeaderBytes);
    if (!reader.ok()) return reject();

    if (set_id == kTemplateSetId) {
      if (!decode_template_set(domain, payload)) return reject();
    } else if (set_id >= kMinDataSetId) {
      const auto it = domain.templates.find(set_id);
      if (it == domain.templates.end()) {
        park_set(domain, set_id, payload);  // template not yet announced
      } else if (!decode_data_set(domain, set_id, it->second, payload)) {
        return reject();
      }
    } else {
      return reject();  // reserved set id
    }
  }
  if (!reader.ok()) return reject();
  ++stats_.frames_accepted;
  return true;
}

void WireDecoder::note_sequence(DomainState& domain, std::uint32_t sequence) {
  if (domain.sequence_primed && sequence != domain.next_sequence) {
    ++stats_.sequence_gaps;
    // Forward jumps imply that many frames were lost; backward jumps
    // (reorder, exporter restart) are a discontinuity with no loss count.
    if (sequence > domain.next_sequence)
      stats_.frames_missed += sequence - domain.next_sequence;
  }
  domain.sequence_primed = true;
  domain.next_sequence = sequence + 1;
}

bool WireDecoder::decode_template_set(DomainState& domain,
                                      std::span<const std::byte> payload) {
  lumen::ByteReader reader(payload);
  bool any = false;
  while (reader.ok() && reader.remaining() > 0) {
    const std::uint16_t template_id = reader.u16();
    const std::uint16_t field_count = reader.u16();
    if (!reader.ok() || template_id < kMinDataSetId || field_count == 0)
      return false;
    std::vector<FieldSpec> fields;
    fields.reserve(field_count);
    for (std::uint16_t i = 0; i < field_count; ++i) {
      const std::uint16_t id = reader.u16();
      const std::uint16_t length = reader.u16();
      if (!reader.ok() || !valid_field_length(length)) return false;
      fields.push_back({id, length});
    }
    domain.templates[template_id] = std::move(fields);
    any = true;
  }
  if (!reader.ok() || !any) return false;
  ++stats_.template_sets;
  // Replay only after the whole announcement decoded: parked sets must
  // replay in their original arrival order (a snapshot-boundary set has
  // to reopen its snapshot before the metric sets that follow it), not
  // in template-id order.
  replay_parked(domain);
  return true;
}

bool WireDecoder::decode_data_set(DomainState& domain, std::uint16_t set_id,
                                  const std::vector<FieldSpec>& fields,
                                  std::span<const std::byte> payload) {
  lumen::ByteReader reader(payload);
  // An empty data set is legal (an exporter may close a set it never
  // filled); trailing bytes too short for a record are corruption.
  while (reader.ok() && reader.remaining() > 0)
    if (!decode_record(domain, reader, set_id, fields)) return false;
  return reader.ok();
}

bool WireDecoder::decode_record(DomainState& domain, lumen::ByteReader& reader,
                                std::uint16_t set_id,
                                const std::vector<FieldSpec>& fields) {
  // Stage 1: read every field the template declares (bounds-checked).
  // Stage 2: apply the ids this decoder knows; unknown ids were still
  // consumed at their declared width, so appended fields are compatible.
  switch (set_id) {
    case kSnapshotTemplate: {
      std::uint64_t tick = 0;
      double uptime = 0.0;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        if (spec.id == kFTick) tick = v.u;
        if (spec.id == kFUptime) uptime = as_f64(v);
      }
      begin_snapshot(domain, tick, uptime);
      break;
    }
    case kCounterTemplate: {
      std::string name;
      std::uint64_t value = 0, delta = 0;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        if (spec.id == kFName) name = std::move(v.s);
        if (spec.id == kFValueU64) value = v.u;
        if (spec.id == kFDeltaU64) delta = v.u;
      }
      if (!domain.in_snapshot) {
        ++stats_.records_orphaned;
      } else {
        domain.current.counters.emplace_back(name, value);
        domain.current.counter_deltas.emplace_back(std::move(name), delta);
      }
      break;
    }
    case kGaugeTemplate: {
      std::string name;
      double value = 0.0;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        if (spec.id == kFName) name = std::move(v.s);
        if (spec.id == kFValueF64) value = as_f64(v);
      }
      if (!domain.in_snapshot)
        ++stats_.records_orphaned;
      else
        domain.current.gauges.emplace_back(std::move(name), value);
      break;
    }
    case kHistogramTemplate: {
      std::string name;
      HistogramSummary summary;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        switch (spec.id) {
          case kFName: name = std::move(v.s); break;
          case kFCount: summary.count = v.u; break;
          case kFMean: summary.mean = as_f64(v); break;
          case kFMin: summary.min = as_f64(v); break;
          case kFMax: summary.max = as_f64(v); break;
          case kFP50: summary.p50 = as_f64(v); break;
          case kFP90: summary.p90 = as_f64(v); break;
          case kFP99: summary.p99 = as_f64(v); break;
          default: break;
        }
      }
      if (!domain.in_snapshot)
        ++stats_.records_orphaned;
      else
        domain.current.histograms.emplace_back(std::move(name), summary);
      break;
    }
    case kAlertTemplate: {
      AlertEvent alert;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        switch (spec.id) {
          case kFRule: alert.rule = std::move(v.s); break;
          case kFMetric: alert.metric = std::move(v.s); break;
          case kFValueF64: alert.value = as_f64(v); break;
          case kFThreshold: alert.threshold = as_f64(v); break;
          case kFResolved: alert.resolved = v.u != 0; break;
          case kFTick: alert.tick = v.u; break;
          case kFDumpPath: alert.dump_path = std::move(v.s); break;
          default: break;
        }
      }
      if (!domain.in_snapshot)
        ++stats_.records_orphaned;
      else
        domain.current.alerts.push_back(std::move(alert));
      break;
    }
    case kLabeledSeriesTemplate: {
      std::string name, labels;
      std::uint64_t kind = 0, value = 0, delta = 0;
      double fvalue = 0.0;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        switch (spec.id) {
          case kFName: name = std::move(v.s); break;
          case kFLabels: labels = std::move(v.s); break;
          case kFKind: kind = v.u; break;
          case kFValueU64: value = v.u; break;
          case kFDeltaU64: delta = v.u; break;
          case kFValueF64: fvalue = as_f64(v); break;
          default: break;
        }
      }
      if (!domain.in_snapshot) {
        ++stats_.records_orphaned;
      } else if (kind == 0) {
        LabeledCounterSample sample;
        sample.name = std::move(name);
        sample.labels = std::move(labels);
        sample.value = value;
        sample.delta = delta;
        domain.current.labeled_counters.push_back(std::move(sample));
      } else {
        LabeledGaugeSample sample;
        sample.name = std::move(name);
        sample.labels = std::move(labels);
        sample.value = fvalue;
        domain.current.labeled_gauges.push_back(std::move(sample));
      }
      break;
    }
    case kLabeledHistogramTemplate: {
      LabeledHistogramSample sample;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        switch (spec.id) {
          case kFName: sample.name = std::move(v.s); break;
          case kFLabels: sample.labels = std::move(v.s); break;
          case kFCount: sample.summary.count = v.u; break;
          case kFMean: sample.summary.mean = as_f64(v); break;
          case kFMin: sample.summary.min = as_f64(v); break;
          case kFMax: sample.summary.max = as_f64(v); break;
          case kFP50: sample.summary.p50 = as_f64(v); break;
          case kFP90: sample.summary.p90 = as_f64(v); break;
          case kFP99: sample.summary.p99 = as_f64(v); break;
          case kFExemplar: sample.exemplar = v.u; break;
          default: break;
        }
      }
      if (!domain.in_snapshot)
        ++stats_.records_orphaned;
      else
        domain.current.labeled_histograms.push_back(std::move(sample));
      break;
    }
    case kProfileTemplate: {
      ProfileEntry entry;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        switch (spec.id) {
          case kFStack: entry.stack = std::move(v.s); break;
          case kFSamples: entry.samples = v.u; break;
          case kFSelfNs: entry.self_ns = v.u; break;
          case kFTotalNs: entry.total_ns = v.u; break;
          default: break;
        }
      }
      if (!domain.in_snapshot)
        ++stats_.records_orphaned;
      else
        domain.current.profile.push_back(std::move(entry));
      break;
    }
    case kRouteEventTemplate: {
      RouteEvent event;
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
        switch (spec.id) {
          case kFSequence: event.sequence = v.u; break;
          case kFSource: event.source = static_cast<std::uint32_t>(v.u); break;
          case kFTarget: event.target = static_cast<std::uint32_t>(v.u); break;
          case kFPolicy: event.policy = std::move(v.s); break;
          case kFHeap: event.heap = std::move(v.s); break;
          case kFOutcome: event.outcome = std::move(v.s); break;
          case kFCost: event.cost = as_f64(v); break;
          case kFHops: event.hops = static_cast<std::uint32_t>(v.u); break;
          case kFConversions:
            event.conversions = static_cast<std::uint32_t>(v.u);
            break;
          case kFAuxNodes: event.aux_nodes = v.u; break;
          case kFAuxLinks: event.aux_links = v.u; break;
          case kFRelaxations: event.relaxations = v.u; break;
          case kFHeapPops: event.heap_pops = v.u; break;
          case kFBuildSeconds: event.build_seconds = as_f64(v); break;
          case kFSearchSeconds: event.search_seconds = as_f64(v); break;
          case kFTraceId: event.trace_id = v.u; break;
          default: break;
        }
      }
      route_events_.push_back(std::move(event));
      break;
    }
    default: {
      // A template this decoder has no semantics for: consume the record
      // at its declared widths so the rest of the set still decodes.
      for (const FieldSpec& spec : fields) {
        FieldValue v;
        if (!read_field(reader, spec, v)) return false;
      }
      break;
    }
  }
  ++stats_.records_decoded;
  return true;
}

void WireDecoder::park_set(DomainState& domain, std::uint16_t set_id,
                           std::span<const std::byte> payload) {
  if (domain.parked.size() >= options_.max_buffered_sets) {
    domain.parked.erase(domain.parked.begin());
    ++stats_.buffered_dropped;
  }
  domain.parked.push_back(
      {set_id, std::vector<std::byte>(payload.begin(), payload.end())});
  ++stats_.buffered_sets;
}

void WireDecoder::replay_parked(DomainState& domain) {
  for (auto parked = domain.parked.begin(); parked != domain.parked.end();) {
    const auto it = domain.templates.find(parked->set_id);
    if (it == domain.templates.end()) {
      ++parked;  // template still outstanding: keep waiting
      continue;
    }
    if (decode_data_set(domain, parked->set_id, it->second, parked->payload))
      ++stats_.replayed_sets;
    else
      ++stats_.buffered_dropped;  // parked bytes turned out malformed
    parked = domain.parked.erase(parked);
  }
}

void WireDecoder::begin_snapshot(DomainState& domain, std::uint64_t tick,
                                 double uptime_seconds) {
  flush_domain(domain);
  domain.current.tick = tick;
  domain.current.uptime_seconds = uptime_seconds;
  domain.in_snapshot = true;
}

void WireDecoder::flush_domain(DomainState& domain) {
  if (!domain.in_snapshot) return;
  completed_.push_back(std::move(domain.current));
  domain.current = PumpSnapshot{};
  domain.in_snapshot = false;
}

void WireDecoder::flush() {
  for (auto& [id, domain] : domains_) flush_domain(domain);
}

std::vector<PumpSnapshot> WireDecoder::take_snapshots() {
  return std::exchange(completed_, {});
}

std::vector<RouteEvent> WireDecoder::take_route_events() {
  return std::exchange(route_events_, {});
}

std::size_t WireDecoder::templates_known(std::uint32_t domain) const {
  const auto it = domains_.find(domain);
  return it == domains_.end() ? 0 : it->second.templates.size();
}

}  // namespace lumen::obs::wire
