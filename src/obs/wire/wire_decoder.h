// WireDecoder: turns wire frames back into snapshots and route events.
//
// The consuming half of the wire protocol (wire_format.h), built for
// hostile input: every read is bounds-checked (util/byteorder.h's
// sticky-fail ByteReader), a malformed or truncated frame is counted and
// rejected — never a crash, never an out-of-bounds read — and the
// accounting invariant
//
//   frames_received == frames_accepted + frames_rejected
//
// holds after any byte stream whatsoever (the frame-fuzz suite pins
// this).  UDP realities the decoder absorbs:
//
//   * data before template — a data set whose template has not been
//     announced yet (the announcement frame was lost) is parked, bounded
//     by `max_buffered_sets`, and replayed the moment the template
//     arrives (the exporter re-announces periodically).
//   * loss — every frame carries a per-exporter sequence number; jumps
//     are counted per observation domain (exported by lumen_collect as
//     `lumen.obs.wire.gaps`).
//   * interleaved exporters — templates, sequence state, and parked sets
//     are all keyed by the frame's observation-domain id.
//
// Decoded counter/gauge/histogram/alert records accumulate into the
// snapshot opened by the latest snapshot-boundary record; the next
// boundary (or flush()) completes it.  Route events accumulate
// independently.  Compiled in both build modes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "obs/route_event.h"
#include "obs/slo.h"
#include "obs/wire/wire_format.h"
#include "util/byteorder.h"

namespace lumen::obs::wire {

struct WireDecoderOptions {
  /// Data sets parked per domain while their template is outstanding;
  /// the oldest is evicted beyond this (counted in buffered_dropped).
  std::size_t max_buffered_sets = 64;
};

struct WireDecoderStats {
  std::uint64_t frames_received = 0;  ///< decode_frame calls
  std::uint64_t frames_accepted = 0;  ///< fully decoded
  std::uint64_t frames_rejected = 0;  ///< malformed/truncated/bad version
  std::uint64_t records_decoded = 0;  ///< data records applied
  std::uint64_t records_orphaned = 0;  ///< metric records outside a snapshot
  std::uint64_t template_sets = 0;     ///< template sets decoded
  std::uint64_t sequence_gaps = 0;     ///< discontinuity events observed
  std::uint64_t frames_missed = 0;     ///< frames the gaps imply were lost
  std::uint64_t buffered_sets = 0;     ///< data sets parked pre-template
  std::uint64_t replayed_sets = 0;     ///< parked sets decoded post-template
  std::uint64_t buffered_dropped = 0;  ///< parked sets evicted or malformed
};

class WireDecoder {
 public:
  explicit WireDecoder(WireDecoderOptions options = {});
  WireDecoder(const WireDecoder&) = delete;
  WireDecoder& operator=(const WireDecoder&) = delete;

  /// Decodes one frame.  False = the frame was rejected (counted); any
  /// records decoded before the malformed point are kept.  Never throws,
  /// never reads out of bounds, accepts arbitrary bytes.
  bool decode_frame(std::span<const std::byte> frame);

  /// Snapshots completed so far (each closed by the next boundary record
  /// or by flush()); clears the internal queue.
  [[nodiscard]] std::vector<PumpSnapshot> take_snapshots();
  /// Route events decoded so far; clears the internal queue.
  [[nodiscard]] std::vector<RouteEvent> take_route_events();
  /// Completes the in-progress snapshot, if any (end-of-stream).
  void flush();

  [[nodiscard]] const WireDecoderStats& stats() const { return stats_; }
  /// Templates currently known for `domain` (diagnostic).
  [[nodiscard]] std::size_t templates_known(std::uint32_t domain) const;

 private:
  struct ParkedSet {
    std::uint16_t set_id = 0;
    std::vector<std::byte> payload;
  };
  struct DomainState {
    std::map<std::uint16_t, std::vector<FieldSpec>> templates;
    std::vector<ParkedSet> parked;
    bool sequence_primed = false;
    std::uint32_t next_sequence = 0;
    /// Snapshot assembly is per domain: interleaved exporters must not
    /// bleed records into each other's snapshots.
    PumpSnapshot current;
    bool in_snapshot = false;
  };

  void note_sequence(DomainState& domain, std::uint32_t sequence);
  bool decode_template_set(DomainState& domain,
                           std::span<const std::byte> payload);
  bool decode_data_set(DomainState& domain, std::uint16_t set_id,
                       const std::vector<FieldSpec>& fields,
                       std::span<const std::byte> payload);
  bool decode_record(DomainState& domain, lumen::ByteReader& reader,
                     std::uint16_t set_id,
                     const std::vector<FieldSpec>& fields);
  void park_set(DomainState& domain, std::uint16_t set_id,
                std::span<const std::byte> payload);
  /// Decodes every parked set whose template is now known, in original
  /// arrival order (boundary records must reopen their snapshot before
  /// the metric sets that followed them).
  void replay_parked(DomainState& domain);
  void begin_snapshot(DomainState& domain, std::uint64_t tick,
                      double uptime_seconds);
  void flush_domain(DomainState& domain);

  WireDecoderOptions options_;
  WireDecoderStats stats_;
  std::map<std::uint32_t, DomainState> domains_;
  std::vector<PumpSnapshot> completed_;
  std::vector<RouteEvent> route_events_;
};

}  // namespace lumen::obs::wire
