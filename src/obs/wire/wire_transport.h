// Frame egress for the wire telemetry exporter.
//
// WireTransport is the seam between "what bytes to send" (wire_encoder)
// and "how they leave the process".  Two implementations:
//
//   LoopbackTransport — an in-memory frame queue.  Deterministic, used
//     by every round-trip test and by in-process consumers (lumen_top's
//     demo could tail itself through one).
//   UdpWireTransport  — the real thing: one frame per UDP datagram to
//     127.0.0.1:<port>, where `lumen_collect` (or lumen_top --collect)
//     listens.  Telemetry loss is acceptable by design (the protocol is
//     sequence-numbered so the collector can count it); send failures
//     never throw, they are counted and dropped.
//
// Compiled in both build modes — the transports carry bytes, not
// instruments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/udp.h"

namespace lumen::obs::wire {

/// Where encoded frames go.  Implementations must tolerate any frame
/// size up to 65535 bytes (the u16 length field's ceiling).
class WireTransport {
 public:
  virtual ~WireTransport() = default;

  /// Ships one frame.  False = the frame was lost (counted by the
  /// exporter; never fatal).
  virtual bool send(std::span<const std::byte> frame) = 0;

  /// Preferred frame payload ceiling for this transport; the encoder
  /// splits snapshots across frames at this size.
  [[nodiscard]] virtual std::size_t max_frame_bytes() const { return 1400; }
};

/// In-memory transport: frames accumulate in arrival order.
class LoopbackTransport final : public WireTransport {
 public:
  bool send(std::span<const std::byte> frame) override {
    frames_.emplace_back(frame.begin(), frame.end());
    return true;
  }
  /// Loopback has no datagram limit; keep frames large to exercise the
  /// single-frame path unless a test overrides via set_max_frame_bytes.
  [[nodiscard]] std::size_t max_frame_bytes() const override {
    return max_frame_bytes_;
  }
  void set_max_frame_bytes(std::size_t bytes) { max_frame_bytes_ = bytes; }

  [[nodiscard]] const std::vector<std::vector<std::byte>>& frames() const {
    return frames_;
  }
  void clear() { frames_.clear(); }

 private:
  std::vector<std::vector<std::byte>> frames_;
  std::size_t max_frame_bytes_ = 60000;
};

/// Real-socket transport: one frame per datagram to 127.0.0.1:`port`.
class UdpWireTransport final : public WireTransport {
 public:
  explicit UdpWireTransport(std::uint16_t port) : port_(port) {}

  bool send(std::span<const std::byte> frame) override {
    return socket_.ok() && socket_.send_to(port_, frame);
  }

  [[nodiscard]] bool ok() const { return socket_.ok(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  lumen::UdpSocket socket_;  // unbound, send-only
  std::uint16_t port_;
};

}  // namespace lumen::obs::wire
