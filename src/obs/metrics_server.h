// Optional plain-socket Prometheus pull endpoint.  Off by default — a
// process gets one only by constructing it explicitly:
//
//   auto server = obs::serve_metrics(9100);   // or port 0 = ephemeral
//   ... scrape http://127.0.0.1:<server->port()>/metrics ...
//
// Implementation is a minimal HTTP/1.0 responder over POSIX sockets (no
// external dependencies): every connection gets a 200 with the current
// obs::prometheus_text() rendering, whatever the request path.  Binds to
// 127.0.0.1 only — this is a scrape endpoint for a local agent, not a
// public listener.  With LUMEN_OBS_DISABLED construction fails cleanly
// (serve_metrics returns nullptr) and nothing listens.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/registry.h"

#if LUMEN_OBS_ENABLED

#include <atomic>
#include <thread>

namespace lumen::obs {
inline namespace enabled {

class MetricsServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and
  /// starts the accept thread.  Check ok() — a failed bind leaves the
  /// server inert rather than throwing.
  explicit MetricsServer(std::uint16_t port = 0,
                         const Registry& registry = Registry::global(),
                         PrometheusOptions options = {});
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;
  ~MetricsServer();

  /// True when the listener is up.
  [[nodiscard]] bool ok() const noexcept { return listen_fd_ >= 0; }
  /// The bound port (the kernel's pick when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins the thread (idempotent; destructor calls
  /// it).  In-flight responses finish.
  void stop();

 private:
  void accept_loop();

  const Registry& registry_;
  PrometheusOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Starts a metrics server; nullptr when the bind failed (port in use,
/// sockets unavailable).
[[nodiscard]] std::unique_ptr<MetricsServer> serve_metrics(
    std::uint16_t port = 0, const Registry& registry = Registry::global(),
    PrometheusOptions options = {});

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: never binds, never serves.
class MetricsServer {
 public:
  explicit MetricsServer(std::uint16_t = 0,
                         const Registry& = Registry::global(),
                         PrometheusOptions = {}) {}
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;
  [[nodiscard]] bool ok() const noexcept { return false; }
  [[nodiscard]] std::uint16_t port() const noexcept { return 0; }
  void stop() {}
};

[[nodiscard]] inline std::unique_ptr<MetricsServer> serve_metrics(
    std::uint16_t = 0, const Registry& = Registry::global(),
    PrometheusOptions = {}) {
  return nullptr;
}

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
