#include "obs/trace.h"

#if LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace enabled {

namespace {

/// Per-thread span nesting depth.
thread_local std::uint32_t t_depth = 0;

std::uint64_t to_ns(std::chrono::steady_clock::time_point tp) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

TraceCollector::TraceCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TraceCollector& TraceCollector::global() {
  static TraceCollector instance;
  return instance;
}

void TraceCollector::emit(const TraceRecord& record) {
  const std::scoped_lock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
  }
  next_ = (next_ + 1) % capacity_;
  ++emitted_;
}

std::vector<TraceRecord> TraceCollector::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // The ring has wrapped: next_ is the oldest record.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::size_t TraceCollector::size() const {
  const std::scoped_lock lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceCollector::total_emitted() const {
  const std::scoped_lock lock(mutex_);
  return emitted_;
}

std::uint64_t TraceCollector::dropped() const {
  const std::scoped_lock lock(mutex_);
  return emitted_ - ring_.size();
}

void TraceCollector::clear() {
  const std::scoped_lock lock(mutex_);
  ring_.clear();
  next_ = 0;
  emitted_ = 0;
}

TraceSpan::TraceSpan(const char* name, TraceCollector* collector)
    : name_(name), collector_(collector), start_(clock::now()),
      depth_(t_depth++) {}

TraceSpan::~TraceSpan() { close(); }

double TraceSpan::elapsed_seconds() const noexcept {
  return std::chrono::duration<double>(clock::now() - start_).count();
}

void TraceSpan::close() {
  if (!open_) return;
  open_ = false;
  --t_depth;
  if (collector_ == nullptr) return;
  TraceRecord record;
  record.name = name_;
  record.start_ns = to_ns(start_);
  record.duration_ns = to_ns(clock::now()) - record.start_ns;
  record.depth = depth_;
  collector_->emit(record);
}

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
