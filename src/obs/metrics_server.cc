#include "obs/metrics_server.h"

#if LUMEN_OBS_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace lumen::obs {
inline namespace enabled {

MetricsServer::MetricsServer(std::uint16_t port, const Registry& registry,
                             PrometheusOptions options)
    : registry_(registry), options_(options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return;
  }

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this] { accept_loop(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  if (!stopping_.exchange(true)) {
    // shutdown() wakes the blocked accept(); the loop then exits on the
    // stopping_ flag.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;
    }
    // Read (and ignore) the request; every path serves the same scrape.
    // A slow client may dribble the request line across several short
    // reads, so keep reading until a line terminator arrives — bounded
    // by the buffer and a receive timeout so a silent client cannot
    // wedge the accept loop, and retrying interrupted reads (EINTR).
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    char buf[2048];
    std::size_t got = 0;
    while (got < sizeof buf) {
      const ssize_t n = ::recv(conn, buf + got, sizeof buf - got, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF, timeout, or hard error: serve anyway
      got += static_cast<std::size_t>(n);
      if (std::memchr(buf, '\n', got) != nullptr) break;  // line complete
    }

    const std::string body = prometheus_text(registry_, options_);
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n = ::send(conn, response.data() + sent,
                               response.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(conn);
  }
}

std::unique_ptr<MetricsServer> serve_metrics(std::uint16_t port,
                                             const Registry& registry,
                                             PrometheusOptions options) {
  auto server =
      std::make_unique<MetricsServer>(port, registry, std::move(options));
  if (!server->ok()) return nullptr;
  return server;
}

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
