#include "obs/registry.h"

#if LUMEN_OBS_ENABLED

#include <algorithm>
#include <cmath>

namespace lumen::obs {
inline namespace enabled {

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_)
    total += bucket.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t LatencyHistogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~std::uint64_t{0} ? 0 : m;
}

std::uint64_t LatencyHistogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double LatencyHistogram::percentile(double q) const noexcept {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;

  // The rank-q observation (nearest-rank, 1-based), then interpolate by
  // its position within the covering bucket's [lower, upper] tick range.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (cumulative + counts[b] < rank) {
      cumulative += counts[b];
      continue;
    }
    if (b == 0) return 0.0;
    const double lower = static_cast<double>(std::uint64_t{1} << (b - 1));
    const double upper = 2.0 * lower;
    const double within = static_cast<double>(rank - cumulative - 1) /
                          static_cast<double>(counts[b]);
    return lower + (upper - lower) * within;
  }
  return static_cast<double>(max());
}

HistogramSummary LatencyHistogram::summary() const noexcept {
  HistogramSummary s;
  s.count = count();
  s.mean = mean();
  s.min = static_cast<double>(min());
  s.max = static_cast<double>(max());
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

void LatencyHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<LatencyHistogram>())
              .first->second;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counter_entries()
    const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> entries;
  entries.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    entries.emplace_back(name, counter.get());
  return entries;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauge_entries()
    const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> entries;
  entries.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    entries.emplace_back(name, gauge.get());
  return entries;
}

std::vector<std::pair<std::string, const LatencyHistogram*>>
Registry::histogram_entries() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> entries;
  entries.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    entries.emplace_back(name, histogram.get());
  return entries;
}

namespace {

template <class T, class Map>
T& family_at(std::mutex& mutex, Map& families, std::string_view name) {
  const std::scoped_lock lock(mutex);
  const auto it = families.find(name);
  if (it != families.end()) return *it->second;
  return *families
              .emplace(std::string(name), std::make_unique<T>(std::string(name)))
              .first->second;
}

template <class Map>
auto family_entries(std::mutex& mutex, const Map& families) {
  const std::scoped_lock lock(mutex);
  std::vector<std::pair<std::string, const typename Map::mapped_type::element_type*>>
      entries;
  entries.reserve(families.size());
  for (const auto& [name, family] : families)
    entries.emplace_back(name, family.get());
  return entries;
}

}  // namespace

LabeledFamily<Counter>& Registry::labeled_counter(std::string_view name) {
  return family_at<LabeledFamily<Counter>>(mutex_, labeled_counters_, name);
}

LabeledFamily<Gauge>& Registry::labeled_gauge(std::string_view name) {
  return family_at<LabeledFamily<Gauge>>(mutex_, labeled_gauges_, name);
}

LabeledFamily<LatencyHistogram>& Registry::labeled_histogram(
    std::string_view name) {
  return family_at<LabeledFamily<LatencyHistogram>>(mutex_,
                                                    labeled_histograms_, name);
}

std::vector<std::pair<std::string, const LabeledFamily<Counter>*>>
Registry::labeled_counter_entries() const {
  return family_entries(mutex_, labeled_counters_);
}

std::vector<std::pair<std::string, const LabeledFamily<Gauge>*>>
Registry::labeled_gauge_entries() const {
  return family_entries(mutex_, labeled_gauges_);
}

std::vector<std::pair<std::string, const LabeledFamily<LatencyHistogram>*>>
Registry::labeled_histogram_entries() const {
  return family_entries(mutex_, labeled_histograms_);
}

void Registry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  for (auto& [name, family] : labeled_counters_) family->reset();
  for (auto& [name, family] : labeled_gauges_) family->reset();
  for (auto& [name, family] : labeled_histograms_) family->reset();
}

}  // inline namespace enabled

namespace detail {

void note_labels_dropped() {
  static Counter& dropped =
      Registry::global().counter("lumen.obs.labels_dropped");
  dropped.add();
}

}  // namespace detail

inline namespace enabled {

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
