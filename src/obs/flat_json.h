// Minimal flat-JSON helpers shared by the obs exporters, the MetricsPump
// snapshot stream, the flight-recorder dump, and the lumen_top CLI.
//
// The grammar is exactly what this subsystem writes: one flat JSON object
// per line, string or numeric values, no nesting.  Not a general JSON
// parser on purpose — keeping the surface tiny is what lets every obs
// stream round-trip without external dependencies.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/error.h"

namespace lumen::obs::detail {

/// Escapes a string for JSON string contexts.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest representation that round-trips a double exactly.
inline std::string fmt_double_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Minimal parser for the flat JSON objects this subsystem writes.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  /// Parses `{ "key": value, ... }`, invoking on_field(key, raw_string,
  /// number, is_string) per pair.
  template <class Callback>
  void parse(Callback&& on_field) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (peek() == '"') {
        on_field(key, parse_string(), 0.0, true);
      } else {
        on_field(key, std::string{}, parse_number(), false);
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw Error("JSONL parse error at line " + std::to_string(line_no_) +
                " col " + std::to_string(pos_ + 1) + ": " + what);
  }
  [[nodiscard]] char peek() const {
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }
  char next() {
    if (pos_ >= line_.size()) fail("unexpected end of line");
    return line_[pos_++];
  }
  void expect(char c) {
    if (next() != c) fail("unexpected character");
  }
  void skip_ws() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t' || line_[pos_] == '\r'))
      ++pos_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // Only ASCII \u00xx escapes are ever written by this module.
          if (pos_ + 4 > line_.size()) fail("truncated \\u escape");
          const std::string hex = line_.substr(pos_, 4);
          pos_ += 4;
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }
  double parse_number() {
    const char* begin = line_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  const std::string& line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace lumen::obs::detail
