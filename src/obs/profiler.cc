#include "obs/profiler.h"

#include "obs/flat_json.h"

namespace lumen::obs {

std::string ProfileSnapshot::folded() const {
  std::string out;
  for (const auto& entry : entries) {
    out += entry.stack;
    out.push_back(' ');
    out += std::to_string(entry.self_ns);
    out.push_back('\n');
  }
  return out;
}

std::string profile_entry_to_json(const ProfileEntry& entry) {
  std::string out = "{\"type\":\"profile\",\"stack\":\"";
  out += detail::json_escape(entry.stack);
  out += "\",\"samples\":";
  out += std::to_string(entry.samples);
  out += ",\"self_ns\":";
  out += std::to_string(entry.self_ns);
  out += ",\"total_ns\":";
  out += std::to_string(entry.total_ns);
  out += "}";
  return out;
}

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <algorithm>
#include <bit>
#include <map>
#include <utility>

#include "obs/registry.h"

namespace lumen::obs {
inline namespace enabled {

namespace {

// Same tsan accommodation as span_buffer.cc: ThreadSanitizer does not
// model std::atomic_thread_fence, so under tsan the seqlock's
// fence+relaxed word accesses become ordered per-word accesses.
#if defined(__SANITIZE_THREAD__)
constexpr std::memory_order kWordStore = std::memory_order_release;
constexpr std::memory_order kWordLoad = std::memory_order_acquire;
void release_fence() {}
void acquire_fence() {}
#else
constexpr std::memory_order kWordStore = std::memory_order_relaxed;
constexpr std::memory_order kWordLoad = std::memory_order_relaxed;
void release_fence() { std::atomic_thread_fence(std::memory_order_release); }
void acquire_fence() { std::atomic_thread_fence(std::memory_order_acquire); }
#endif

/// Per-thread ambient stage stack, shared by all Profiler instances
/// (there is one truth about what this thread is doing).  Depth counts
/// every open span; names beyond kStackSlots are folded into their
/// deepest retained ancestor.
constexpr std::size_t kStackSlots = 32;

struct ThreadStack {
  const char* names[kStackSlots];
  std::size_t depth = 0;
  /// Closes until the next sample; starts at 1 so the first close on a
  /// thread is always sampled.
  std::uint32_t countdown = 1;
};

thread_local ThreadStack t_stack;

}  // namespace

Profiler::Profiler(std::size_t capacity, std::uint32_t sample_period) {
  capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
  set_sample_period(sample_period);
}

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

void Profiler::on_span_open(const char* name) noexcept {
  if (t_stack.depth < kStackSlots) t_stack.names[t_stack.depth] = name;
  ++t_stack.depth;
}

void Profiler::on_span_close(std::uint64_t duration_ns) {
  ThreadStack& ts = t_stack;
  if (ts.depth == 0) return;  // unbalanced close; drop silently
  if (--ts.countdown == 0) {
    const std::uint32_t period = sample_period();
    ts.countdown = period;
    const std::size_t frames = std::min(ts.depth, kStackSlots);
    record(std::span<const char* const>(ts.names, frames), duration_ns,
           period);
  }
  --ts.depth;
}

void Profiler::record(std::span<const char* const> stack,
                      std::uint64_t duration_ns, std::uint64_t weight) {
  if (stack.empty()) return;
  const std::size_t frames = std::min(stack.size(), kMaxDepth);

  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];

  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  release_fence();
  slot.words[0].store(static_cast<std::uint64_t>(frames) | (weight << 8),
                      kWordStore);
  slot.words[1].store(duration_ns, kWordStore);
  for (std::size_t i = 0; i < frames; ++i)
    slot.words[2 + i].store(
        static_cast<std::uint64_t>(std::bit_cast<std::uintptr_t>(stack[i])),
        kWordStore);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);

  if (ticket >= capacity_) {
    static Counter& samples_dropped =
        Registry::global().counter("lumen.obs.profile_samples_dropped");
    samples_dropped.add();
  }
}

ProfileSnapshot Profiler::snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;

  struct Accum {
    std::uint64_t samples = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Accum> stacks;

  ProfileSnapshot out;
  out.dropped = end > capacity_ ? end - capacity_ : 0;

  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 == 0) break;    // never written
      if (seq1 & 1) continue;  // write in progress — retry
      std::uint64_t words[kWords];
      for (std::size_t i = 0; i < kWords; ++i)
        words[i] = slot.words[i].load(kWordLoad);
      acquire_fence();
      const std::uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
      if (seq1 != seq2) continue;  // torn read — retry

      const std::size_t frames =
          std::min<std::size_t>(words[0] & 0xFF, kMaxDepth);
      const std::uint64_t weight = words[0] >> 8;
      const std::uint64_t duration_ns = words[1];
      std::string stack;
      for (std::size_t i = 0; i < frames; ++i) {
        if (i != 0) stack.push_back(';');
        stack += std::bit_cast<const char*>(
            static_cast<std::uintptr_t>(words[2 + i]));
      }
      Accum& accum = stacks[std::move(stack)];
      accum.samples += weight;
      accum.total_ns += weight * duration_ns;
      ++out.samples;
      break;
    }
  }

  out.entries.reserve(stacks.size());
  for (auto& [stack, accum] : stacks) {
    ProfileEntry entry;
    entry.stack = stack;
    entry.samples = accum.samples;
    entry.total_ns = accum.total_ns;
    entry.self_ns = accum.total_ns;
    out.entries.push_back(std::move(entry));
  }

  // Self time: subtract each entry's *direct* children (stack + one
  // frame), clamping at zero — sampling noise can make a child's
  // weighted total exceed its parent's.
  for (auto& entry : out.entries) {
    const std::string prefix = entry.stack + ';';
    std::uint64_t children_ns = 0;
    for (const auto& other : out.entries) {
      if (other.stack.size() <= prefix.size()) continue;
      if (other.stack.compare(0, prefix.size(), prefix) != 0) continue;
      if (other.stack.find(';', prefix.size()) != std::string::npos) continue;
      children_ns += other.total_ns;
    }
    entry.self_ns =
        children_ns >= entry.total_ns ? 0 : entry.total_ns - children_ns;
  }
  return out;
}

std::uint64_t Profiler::total_samples() const noexcept {
  return next_.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::dropped() const noexcept {
  const std::uint64_t emitted = next_.load(std::memory_order_relaxed);
  return emitted > capacity_ ? emitted - capacity_ : 0;
}

void Profiler::clear() {
  next_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].seq.store(0, std::memory_order_relaxed);
}

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
