// Offline reconstruction of causal trace trees from span records.
//
// The distributed routers stamp a TraceContext on every protocol message
// and emit CausalSpanRecords into a SpanBuffer; this module turns a
// snapshot of those records back into per-trace trees (span_id /
// parent_span_id linkage) and renders them as nested JSON or a
// human-readable indented tree.
//
// Everything here is passive data processing — it is always compiled,
// independent of LUMEN_OBS_DISABLED (a disabled build just never has
// records to assemble).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span_buffer.h"

namespace lumen::obs {

/// One span with its causal children, ordered by span_id (= creation
/// order, since span ids are allocated from a process-wide counter).
struct TraceNode {
  CausalSpanRecord span;
  std::vector<TraceNode> children;
};

/// One reconstructed trace.
struct TraceTree {
  std::uint64_t trace_id = 0;
  /// Top-level spans: parent_span_id 0, or an orphan whose parent is not
  /// in the snapshot (e.g. evicted by ring wraparound).
  std::vector<TraceNode> roots;
  /// Spans in the tree (all records of the trace).
  std::size_t total_spans = 0;
  /// Roots whose parent_span_id != 0 (parent record missing).
  std::size_t orphans = 0;
};

/// Distinct trace ids present in `spans`, ascending.
[[nodiscard]] std::vector<std::uint64_t> trace_ids(
    std::span<const CausalSpanRecord> spans);

/// Reconstructs the tree of one trace (records with other trace ids are
/// ignored).  Returns an empty tree when the id is absent.
[[nodiscard]] TraceTree assemble_trace(std::span<const CausalSpanRecord> spans,
                                       std::uint64_t trace_id);

/// Reconstructs every trace present in `spans`, ordered by trace id.
[[nodiscard]] std::vector<TraceTree> assemble_traces(
    std::span<const CausalSpanRecord> spans);

/// Depth-first search for the first node whose span name equals `name`;
/// nullptr when absent.  Traversal order: roots then children, each in
/// span-id order.
[[nodiscard]] const TraceNode* find_span(const TraceTree& tree,
                                         std::string_view name);

/// All nodes (at any depth) whose span name equals `name`.
[[nodiscard]] std::vector<const TraceNode*> find_spans(const TraceTree& tree,
                                                       std::string_view name);

/// One span as a single-line flat JSON object (no newline) — the shape
/// the flight recorder dumps use.
[[nodiscard]] std::string causal_span_to_json(const CausalSpanRecord& span);

/// The whole tree as nested JSON: {"trace_id":…,"total_spans":…,
/// "orphans":…,"roots":[{…,"children":[…]}]}.
[[nodiscard]] std::string trace_tree_to_json(const TraceTree& tree);

/// Human-readable indented rendering, one span per line:
///   trace 7 (12 spans)
///   └─ dist.sync.run node=0 vt=[0,9] 1.2ms
///      ├─ dist.node_round node=1 vt=[1,1] …
[[nodiscard]] std::string render_trace_tree(const TraceTree& tree);

}  // namespace lumen::obs
