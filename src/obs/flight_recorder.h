// Flight recorder: a bounded in-memory ring of recent RouteEvents plus
// the causal span buffer, dumpable on demand or on an SLO trigger.
//
// The idea is the aircraft one: keep the last N interesting things in
// memory at negligible cost, and when something trips (an SLO breach, an
// operator request) write them all out — every open/block/fail/reroute
// with its trace id, and every causal span, so the breaching request's
// full event chain can be reconstructed offline (trace_assembler.h).
//
//   obs::FlightRecorder::global().dump("flight.jsonl");
//
// writes one flat JSON object per line: {"type":"span",…} lines for the
// span buffer followed by {"type":"route_event",…} lines for the event
// ring.  SessionManager mirrors every RouteEvent it produces into the
// global recorder; MetricsPump calls trigger_dump() on SLO breaches.
// With LUMEN_OBS_DISABLED recording and dumping are no-ops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/route_event.h"
#include "obs/span_buffer.h"

#if LUMEN_OBS_ENABLED

#include <mutex>

namespace lumen::obs {
inline namespace enabled {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultEventCapacity = 1024;

  /// `spans` must outlive the recorder (defaults to the process-wide
  /// buffer all CausalSpans land in).
  explicit FlightRecorder(std::size_t event_capacity = kDefaultEventCapacity,
                          SpanBuffer* spans = &SpanBuffer::global());
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder SessionManager mirrors into.
  static FlightRecorder& global();

  /// Appends one event (thread-safe; overwrites the oldest once full,
  /// counted in events_dropped() and `lumen.obs.events_dropped`).
  void record_event(const RouteEvent& event);

  /// The retained events, oldest first.
  [[nodiscard]] std::vector<RouteEvent> events() const;
  [[nodiscard]] std::size_t event_capacity() const noexcept {
    return capacity_;
  }
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t events_dropped() const;

  /// The span ring this recorder dumps alongside its events.
  [[nodiscard]] SpanBuffer& spans() noexcept { return *spans_; }
  [[nodiscard]] const SpanBuffer& spans() const noexcept { return *spans_; }

  /// The dump as a string: one {"type":"span",…} line per retained span,
  /// then one {"type":"route_event",…} line per retained event.
  [[nodiscard]] std::string dump_string() const;

  /// Writes dump_string() to `path`.  False on I/O failure.
  bool dump(const std::string& path) const;

  /// Dumps to `<dir>/<tag>.jsonl` (tag sanitized to [A-Za-z0-9._-]).
  /// `extra_lines` are prepended to the dump verbatim, one line each —
  /// the pump passes breach/profile context lines here so a dump opens
  /// with *why* it was taken.  Returns the path written, "" on failure.
  std::string trigger_dump(const std::string& dir, const std::string& tag,
                           const std::vector<std::string>& extra_lines = {})
      const;

  /// Drops retained events (the span buffer is left alone).  For tests.
  void clear();

 private:
  const std::size_t capacity_;
  SpanBuffer* spans_;
  mutable std::mutex mutex_;
  std::vector<RouteEvent> ring_;
  std::size_t next_ = 0;       // ring write cursor once full
  std::uint64_t emitted_ = 0;  // lifetime total
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: records nothing, dumps nothing.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultEventCapacity = 1024;
  explicit FlightRecorder(std::size_t = kDefaultEventCapacity,
                          SpanBuffer* = &SpanBuffer::global()) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  static FlightRecorder& global() {
    static FlightRecorder instance;
    return instance;
  }
  void record_event(const RouteEvent&) {}
  [[nodiscard]] std::vector<RouteEvent> events() const { return {}; }
  [[nodiscard]] std::size_t event_capacity() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t events_dropped() const { return 0; }
  [[nodiscard]] SpanBuffer& spans() noexcept { return SpanBuffer::global(); }
  [[nodiscard]] const SpanBuffer& spans() const noexcept {
    return SpanBuffer::global();
  }
  [[nodiscard]] std::string dump_string() const { return {}; }
  bool dump(const std::string&) const { return false; }
  std::string trigger_dump(const std::string&, const std::string&,
                           const std::vector<std::string>& = {}) const {
    return {};
  }
  void clear() {}
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
