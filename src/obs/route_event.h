// Structured per-request routing records.
//
// One RouteEvent is produced per routing request (SessionManager::open,
// the lumen_route CLI, or any caller that fills one in): what was asked,
// which policy answered, what it cost, and how hard the engine worked.
// The schema is flat and numeric on purpose — every field lands verbatim
// in the JSONL/CSV exporters (obs/export.h), so downstream analysis never
// parses nested structures.
//
// RouteEvent/RouteEventLog are plain passive data (no ambient cost when
// nobody appends), so they stay available even under LUMEN_OBS_DISABLED;
// only the ambient instruments (registry, spans) compile away.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace lumen::obs {

/// Bumps the `lumen.obs.events_dropped` registry counter by `n`.  Defined
/// out of line (route_event.cc) so this passive header never pulls in the
/// registry; a no-op when the obs library was built with
/// LUMEN_OBS_DISABLED.
void note_route_events_dropped(std::uint64_t n);

/// One routing request, machine-readable.
struct RouteEvent {
  /// Monotone per-producer sequence number.
  std::uint64_t sequence = 0;
  std::uint32_t source = 0;
  std::uint32_t target = 0;
  /// Routing policy that served the request ("first_fit", "lightpath",
  /// "semilightpath", ...).
  std::string policy;
  /// Dijkstra heap used, when applicable ("fibonacci", "binary", ...).
  std::string heap;
  /// "carried", "blocked", "rerouted", "dropped", "found", "not_found".
  std::string outcome;
  /// C(P) of the chosen route (meaningless unless the outcome carries).
  double cost = 0.0;
  std::uint32_t hops = 0;
  std::uint32_t conversions = 0;
  /// Auxiliary-graph size searched (paper Observations 1-5 axes).
  std::uint64_t aux_nodes = 0;
  std::uint64_t aux_links = 0;
  /// Search effort.
  std::uint64_t relaxations = 0;
  std::uint64_t heap_pops = 0;
  /// Stage timings.
  double build_seconds = 0.0;
  double search_seconds = 0.0;
  /// Causal trace the request belongs to (obs/trace_context.h); 0 when
  /// tracing is off or the producer predates it.  Appended to the end of
  /// the JSONL/CSV schema.
  std::uint64_t trace_id = 0;

  friend bool operator==(const RouteEvent&, const RouteEvent&) = default;
};

/// Append-only, thread-safe event sink.  A capacity of 0 means unbounded;
/// otherwise the oldest events are discarded once the cap is reached
/// (bounded memory for long-running processes).
class RouteEventLog {
 public:
  explicit RouteEventLog(std::size_t capacity = 0) : capacity_(capacity) {}
  RouteEventLog(const RouteEventLog&) = delete;
  RouteEventLog& operator=(const RouteEventLog&) = delete;

  void append(RouteEvent event) {
    std::size_t erased = 0;
    {
      const std::scoped_lock lock(mutex_);
      events_.push_back(std::move(event));
      if (capacity_ != 0 && events_.size() > capacity_) {
        erased = events_.size() - capacity_;
        events_.erase(events_.begin(),
                      events_.begin() + static_cast<std::ptrdiff_t>(erased));
        // Erase in bulk (appends outpace the cap by at most 1, but bulk
        // keeps the invariant obvious).
        dropped_ += erased;
      }
    }
    if (erased != 0) note_route_events_dropped(erased);
  }

  [[nodiscard]] std::vector<RouteEvent> snapshot() const {
    const std::scoped_lock lock(mutex_);
    return events_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return events_.size();
  }

  /// Events discarded by the capacity bound over the log's lifetime (also
  /// counted in the `lumen.obs.events_dropped` registry counter, so silent
  /// truncation is visible in exports).
  [[nodiscard]] std::uint64_t dropped() const {
    const std::scoped_lock lock(mutex_);
    return dropped_;
  }

  void clear() {
    const std::scoped_lock lock(mutex_);
    events_.clear();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<RouteEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace lumen::obs
