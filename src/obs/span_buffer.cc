#include "obs/span_buffer.h"

#if LUMEN_OBS_ENABLED

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/registry.h"

namespace lumen::obs {
inline namespace enabled {

namespace {

std::uint64_t d2u(double v) { return std::bit_cast<std::uint64_t>(v); }
double u2d(std::uint64_t v) { return std::bit_cast<double>(v); }

// ThreadSanitizer does not model std::atomic_thread_fence (GCC rejects it
// outright under -Werror=tsan), so under tsan the seqlock's fence+relaxed
// word accesses become ordered per-word accesses: release stores keep the
// odd marker ahead of the payload, acquire loads keep the payload ahead of
// the seq re-check.  Plain builds keep the cheaper fence form.
#if defined(__SANITIZE_THREAD__)
constexpr std::memory_order kWordStore = std::memory_order_release;
constexpr std::memory_order kWordLoad = std::memory_order_acquire;
void release_fence() {}
void acquire_fence() {}
#else
constexpr std::memory_order kWordStore = std::memory_order_relaxed;
constexpr std::memory_order kWordLoad = std::memory_order_relaxed;
void release_fence() { std::atomic_thread_fence(std::memory_order_release); }
void acquire_fence() { std::atomic_thread_fence(std::memory_order_acquire); }
#endif

}  // namespace

SpanBuffer::SpanBuffer(std::size_t capacity) {
  capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

SpanBuffer& SpanBuffer::global() {
  static SpanBuffer instance;
  return instance;
}

void SpanBuffer::emit(const CausalSpanRecord& r) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];

  // Seqlock write: odd marker, release fence, payload words (relaxed —
  // racing readers discard inconsistent copies by the seq check), even
  // marker with release so a reader seeing it also sees the words.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  release_fence();
  const std::uint64_t words[kWords] = {
      r.trace_id,
      r.span_id,
      r.parent_span_id,
      static_cast<std::uint64_t>(std::bit_cast<std::uintptr_t>(r.name)),
      static_cast<std::uint64_t>(r.node),
      r.start_ns,
      r.duration_ns,
      d2u(r.vt_begin),
      d2u(r.vt_end),
      r.attr0,
      r.attr1,
  };
  for (std::size_t i = 0; i < kWords; ++i)
    slot.words[i].store(words[i], kWordStore);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);

  if (ticket >= capacity_) {
    static Counter& spans_dropped =
        Registry::global().counter("lumen.obs.spans_dropped");
    spans_dropped.add();
  }
}

std::vector<CausalSpanRecord> SpanBuffer::snapshot() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;

  std::vector<std::pair<std::uint64_t, CausalSpanRecord>> got;
  got.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 == 0) break;       // never written
      if (seq1 & 1) continue;     // write in progress — retry
      std::uint64_t words[kWords];
      for (std::size_t i = 0; i < kWords; ++i)
        words[i] = slot.words[i].load(kWordLoad);
      acquire_fence();
      const std::uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
      if (seq1 != seq2) continue;  // torn read — retry
      CausalSpanRecord r;
      r.trace_id = words[0];
      r.span_id = words[1];
      r.parent_span_id = words[2];
      r.name = std::bit_cast<const char*>(
          static_cast<std::uintptr_t>(words[3]));
      r.node = static_cast<std::uint32_t>(words[4]);
      r.start_ns = words[5];
      r.duration_ns = words[6];
      r.vt_begin = u2d(words[7]);
      r.vt_end = u2d(words[8]);
      r.attr0 = words[9];
      r.attr1 = words[10];
      // The slot may hold a newer ticket than the one we came for; keep
      // whichever consistent record we found, keyed by its own ticket.
      got.emplace_back((seq2 - 2) / 2, std::move(r));
      break;
    }
  }

  std::sort(got.begin(), got.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  got.erase(std::unique(got.begin(), got.end(),
                        [](const auto& a, const auto& b) {
                          return a.first == b.first;
                        }),
            got.end());

  std::vector<CausalSpanRecord> out;
  out.reserve(got.size());
  for (auto& [ticket, record] : got) out.push_back(std::move(record));
  return out;
}

std::size_t SpanBuffer::size() const noexcept {
  const std::uint64_t emitted = next_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(emitted, capacity_));
}

std::uint64_t SpanBuffer::total_emitted() const noexcept {
  return next_.load(std::memory_order_relaxed);
}

std::uint64_t SpanBuffer::dropped() const noexcept {
  const std::uint64_t emitted = next_.load(std::memory_order_relaxed);
  return emitted > capacity_ ? emitted - capacity_ : 0;
}

void SpanBuffer::clear() {
  next_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity_; ++i)
    slots_[i].seq.store(0, std::memory_order_relaxed);
}

}  // inline namespace enabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
