// Always-on cooperative sampling profiler over the CausalSpan stack.
//
// Every *ambient* CausalSpan (the scoped, thread-stacked kind — engine
// queries, svc admission, protocol rounds) doubles as a profiler frame:
// span open pushes its name onto a per-thread stage stack, span close
// pops it and, one close in every `sample_period`, publishes a weighted
// sample {stage stack, duration, weight = period} into a lock-free
// seqlock ring (the SpanBuffer idiom).  No signals, no timer thread, no
// unwinding: the instrumentation the code already carries *is* the
// profile, and the steady-state cost on unsampled closes is a TLS
// decrement.
//
// snapshot() folds the ring into per-stack entries with weighted
// total time and self time (total minus direct children, clamped at
// zero — sampling noise can make children momentarily exceed their
// parent).  ProfileSnapshot::folded() renders classic folded-stack
// lines ("svc.admit;svc.route;engine.semilightpath 123456") ready for
// flamegraph tooling; profile_entry_to_json() renders the JSONL form
// used by breach dumps and the wire exporter (template 264).
//
// With LUMEN_OBS_DISABLED the profiler compiles to no-ops; the passive
// snapshot types stay available to collectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace lumen::obs {

/// One aggregated stage stack.  Passive data, shared by both build
/// modes (rides PumpSnapshot and the wire protocol).
struct ProfileEntry {
  /// ';'-joined span names, root first ("svc.admit;svc.route").
  std::string stack;
  /// Estimated number of span closes this entry stands for (sum of
  /// sample weights).
  std::uint64_t samples = 0;
  /// Weighted nanoseconds attributed to this exact stack, excluding
  /// time in sampled child stacks.
  std::uint64_t self_ns = 0;
  /// Weighted nanoseconds including child stacks.
  std::uint64_t total_ns = 0;

  friend bool operator==(const ProfileEntry&, const ProfileEntry&) = default;
};

/// An aggregated profile: entries sorted by stack, plus ring accounting.
struct ProfileSnapshot {
  /// Raw ring samples this snapshot aggregated.
  std::uint64_t samples = 0;
  /// Samples lost to ring wraparound over the profiler's lifetime.
  std::uint64_t dropped = 0;
  std::vector<ProfileEntry> entries;

  /// Folded-stack text: one "stack self_ns" line per entry.
  [[nodiscard]] std::string folded() const;

  friend bool operator==(const ProfileSnapshot&,
                         const ProfileSnapshot&) = default;
};

/// {"type":"profile","stack":"...","samples":N,"self_ns":N,"total_ns":N}
[[nodiscard]] std::string profile_entry_to_json(const ProfileEntry& entry);

}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <atomic>
#include <memory>
#include <span>

namespace lumen::obs {
inline namespace enabled {

class Profiler {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::uint32_t kDefaultSamplePeriod = 8;
  /// Frames retained per sample; deeper stacks fold into their 8th
  /// ancestor (the ambient nesting in this codebase is 3-4 deep).
  static constexpr std::size_t kMaxDepth = 8;

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit Profiler(std::size_t capacity = kDefaultCapacity,
                    std::uint32_t sample_period = kDefaultSamplePeriod);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler every ambient CausalSpan reports to.
  static Profiler& global();

  /// CausalSpan hooks (ambient spans only; see trace_context.cc).
  /// `name` must outlive the profiler — string literals in practice.
  void on_span_open(const char* name) noexcept;
  void on_span_close(std::uint64_t duration_ns);

  /// Publishes one weighted sample directly (tests, bench, and replay
  /// tooling; the hook path derives stack/weight itself).
  void record(std::span<const char* const> stack, std::uint64_t duration_ns,
              std::uint64_t weight);

  /// Aggregates the ring into per-stack self/total profiles.
  [[nodiscard]] ProfileSnapshot snapshot() const;

  /// 1-in-N close sampling (per thread).  1 = sample every close.
  void set_sample_period(std::uint32_t period) noexcept {
    period_.store(period == 0 ? 1 : period, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t sample_period() const noexcept {
    return period_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Samples published over the profiler's lifetime.
  [[nodiscard]] std::uint64_t total_samples() const noexcept;
  /// Samples lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Resets the ring to empty.  NOT safe concurrently with record();
  /// intended for test isolation only.
  void clear();

 private:
  /// Packed sample: word0 = depth | weight<<8, word1 = duration_ns,
  /// words 2.. = frame name pointers (root first).
  static constexpr std::size_t kWords = 2 + kMaxDepth;

  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kWords] = {};
  };

  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};  // ticket counter = lifetime total
  std::atomic<std::uint32_t> period_{kDefaultSamplePeriod};
};

}  // inline namespace enabled
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

#include <span>

namespace lumen::obs {
inline namespace disabled {

/// No-op stand-in: see the enabled definition for semantics.
class Profiler {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::uint32_t kDefaultSamplePeriod = 8;
  static constexpr std::size_t kMaxDepth = 8;
  explicit Profiler(std::size_t = kDefaultCapacity,
                    std::uint32_t = kDefaultSamplePeriod) {}
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  static Profiler& global() {
    static Profiler instance;
    return instance;
  }
  void on_span_open(const char*) noexcept {}
  void on_span_close(std::uint64_t) {}
  void record(std::span<const char* const>, std::uint64_t, std::uint64_t) {}
  [[nodiscard]] ProfileSnapshot snapshot() const { return {}; }
  void set_sample_period(std::uint32_t) noexcept {}
  [[nodiscard]] std::uint32_t sample_period() const noexcept { return 1; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t total_samples() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  void clear() {}
};

}  // inline namespace disabled
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
