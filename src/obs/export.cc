#include "obs/export.h"

#include <cctype>
#include <istream>
#include <ostream>

#include <map>

#include "obs/flat_json.h"
#include "obs/tagset.h"

namespace lumen::obs {

namespace {

using detail::FlatJsonParser;
using detail::fmt_double_exact;
using detail::json_escape;

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

}  // namespace

std::string route_event_to_json(const RouteEvent& e) {
  std::string out = "{";
  const auto num = [&out](const char* key, const std::string& value) {
    out += '"';
    out += key;
    out += "\":";
    out += value;
    out += ',';
  };
  const auto str = [&out](const char* key, const std::string& value) {
    out += '"';
    out += key;
    out += "\":\"";
    out += json_escape(value);
    out += "\",";
  };
  num("sequence", std::to_string(e.sequence));
  num("source", std::to_string(e.source));
  num("target", std::to_string(e.target));
  str("policy", e.policy);
  str("heap", e.heap);
  str("outcome", e.outcome);
  num("cost", fmt_double_exact(e.cost));
  num("hops", std::to_string(e.hops));
  num("conversions", std::to_string(e.conversions));
  num("aux_nodes", std::to_string(e.aux_nodes));
  num("aux_links", std::to_string(e.aux_links));
  num("relaxations", std::to_string(e.relaxations));
  num("heap_pops", std::to_string(e.heap_pops));
  num("build_seconds", fmt_double_exact(e.build_seconds));
  num("search_seconds", fmt_double_exact(e.search_seconds));
  // trace_id rides at the end of the schema (appended in v2, so pre-v2
  // consumers keyed on field order stay valid).
  num("trace_id", std::to_string(e.trace_id));
  out.back() = '}';
  return out;
}

void write_route_events_jsonl(std::ostream& out,
                              std::span<const RouteEvent> events) {
  for (const RouteEvent& e : events) out << route_event_to_json(e) << '\n';
}

std::vector<RouteEvent> read_route_events_jsonl(std::istream& in) {
  std::vector<RouteEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    RouteEvent e;
    FlatJsonParser parser(line, line_no);
    parser.parse([&e](const std::string& key, const std::string& s, double n,
                      bool is_string) {
      if (is_string) {
        if (key == "policy") e.policy = s;
        else if (key == "heap") e.heap = s;
        else if (key == "outcome") e.outcome = s;
        return;
      }
      if (key == "sequence") e.sequence = static_cast<std::uint64_t>(n);
      else if (key == "source") e.source = static_cast<std::uint32_t>(n);
      else if (key == "target") e.target = static_cast<std::uint32_t>(n);
      else if (key == "cost") e.cost = n;
      else if (key == "hops") e.hops = static_cast<std::uint32_t>(n);
      else if (key == "conversions")
        e.conversions = static_cast<std::uint32_t>(n);
      else if (key == "aux_nodes") e.aux_nodes = static_cast<std::uint64_t>(n);
      else if (key == "aux_links") e.aux_links = static_cast<std::uint64_t>(n);
      else if (key == "relaxations")
        e.relaxations = static_cast<std::uint64_t>(n);
      else if (key == "heap_pops") e.heap_pops = static_cast<std::uint64_t>(n);
      else if (key == "build_seconds") e.build_seconds = n;
      else if (key == "search_seconds") e.search_seconds = n;
      else if (key == "trace_id") e.trace_id = static_cast<std::uint64_t>(n);
    });
    events.push_back(std::move(e));
  }
  return events;
}

void write_route_events_csv(std::ostream& out,
                            std::span<const RouteEvent> events) {
  out << "sequence,source,target,policy,heap,outcome,cost,hops,conversions,"
         "aux_nodes,aux_links,relaxations,heap_pops,build_seconds,"
         "search_seconds,trace_id\n";
  for (const RouteEvent& e : events) {
    out << e.sequence << ',' << e.source << ',' << e.target << ','
        << csv_quote(e.policy) << ',' << csv_quote(e.heap) << ','
        << csv_quote(e.outcome) << ',' << fmt_double_exact(e.cost) << ','
        << e.hops << ',' << e.conversions << ',' << e.aux_nodes << ','
        << e.aux_links << ',' << e.relaxations << ',' << e.heap_pops << ','
        << fmt_double_exact(e.build_seconds) << ','
        << fmt_double_exact(e.search_seconds) << ',' << e.trace_id << '\n';
  }
}

// Registry names use dots; Prometheus wants [a-zA-Z0-9_:].
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      c = '_';
  }
  return out;
}

std::string prometheus_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

namespace {

/// The inner label list without braces ("tenant=\"3\",shard=\"1\"") —
/// the histogram renderer merges this with its own `le` label.
std::string prometheus_labels_inner(const std::string& canonical) {
  std::string out;
  for (const auto& [key, value] : labels_parse(canonical)) {
    if (!out.empty()) out += ',';
    out += prometheus_name(key) + "=\"" + prometheus_label_value(value) + '"';
  }
  return out;
}

}  // namespace

std::string prometheus_labels(const std::string& canonical) {
  if (canonical.empty()) return {};
  std::string out = "{";
  out += prometheus_labels_inner(canonical);
  out += '}';
  return out;
}

#if LUMEN_OBS_ENABLED

namespace {

// `labels` is the inner label list ("tenant=\"3\"", or "" for the plain
// instrument); it merges with the `le`/`quantile` labels below.  TYPE
// lines are the caller's job — labeled children share their metric's.
void append_native_histogram(std::string& out, const std::string& metric,
                             const std::string& labels,
                             const LatencyHistogram& histogram) {
  std::string le_prefix = "_bucket{";
  if (!labels.empty()) {
    le_prefix += labels;
    le_prefix += ',';
  }
  le_prefix += "le=\"";
  std::string suffix;
  if (!labels.empty()) {
    suffix += '{';
    suffix += labels;
    suffix += '}';
  }
  std::uint64_t cumulative = 0;
  int highest = -1;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (histogram.bucket_count(b) != 0) highest = b;
  }
  for (int b = 0; b <= highest; ++b) {
    cumulative += histogram.bucket_count(b);
    out += metric + le_prefix +
           std::to_string(LatencyHistogram::bucket_upper_bound(b)) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += metric + le_prefix + "+Inf\"} " + std::to_string(cumulative) + "\n";
  out += metric + "_sum" + suffix + " " + std::to_string(histogram.sum()) +
         "\n";
  out += metric + "_count" + suffix + " " + std::to_string(cumulative) + "\n";
}

void append_summary_gauges(std::string& out, const std::string& metric,
                           const std::string& labels,
                           const LatencyHistogram& histogram) {
  const std::string name = metric + "_summary";
  std::string q_prefix = "{";
  if (!labels.empty()) {
    q_prefix += labels;
    q_prefix += ',';
  }
  q_prefix += "quantile=\"";
  std::string suffix;
  if (!labels.empty()) {
    suffix += '{';
    suffix += labels;
    suffix += '}';
  }
  const HistogramSummary summary = histogram.summary();
  out += name + q_prefix + "0.5\"} " + detail::fmt_double_exact(summary.p50) +
         "\n";
  out += name + q_prefix + "0.9\"} " + detail::fmt_double_exact(summary.p90) +
         "\n";
  out += name + q_prefix + "0.99\"} " +
         detail::fmt_double_exact(summary.p99) + "\n";
  out += name + "_sum" + suffix + " " + std::to_string(histogram.sum()) +
         "\n";
  out += name + "_count" + suffix + " " + std::to_string(summary.count) +
         "\n";
}

}  // namespace

std::string prometheus_text(const Registry& registry,
                            const PrometheusOptions& options) {
  std::string out;

  // Plain sample first, then that name's labeled children under the same
  // TYPE block; families with no plain namesake get their own block.
  std::map<std::string, const LabeledFamily<Counter>*> labeled_counters;
  for (const auto& [name, family] : registry.labeled_counter_entries())
    labeled_counters.emplace(name, family);
  const auto counter_children =
      [&out](const std::string& metric, const LabeledFamily<Counter>& family) {
        for (const auto& [labels, child] : family.entries())
          out += metric + prometheus_labels(labels) + " " +
                 std::to_string(child->value()) + "\n";
      };
  for (const auto& [name, counter] : registry.counter_entries()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(counter->value()) + "\n";
    const auto it = labeled_counters.find(name);
    if (it != labeled_counters.end()) {
      counter_children(metric, *it->second);
      labeled_counters.erase(it);
    }
  }
  for (const auto& [name, family] : labeled_counters) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " counter\n";
    counter_children(metric, *family);
  }

  std::map<std::string, const LabeledFamily<Gauge>*> labeled_gauges;
  for (const auto& [name, family] : registry.labeled_gauge_entries())
    labeled_gauges.emplace(name, family);
  const auto gauge_children =
      [&out](const std::string& metric, const LabeledFamily<Gauge>& family) {
        for (const auto& [labels, child] : family.entries())
          out += metric + prometheus_labels(labels) + " " +
                 detail::fmt_double_exact(child->value()) + "\n";
      };
  for (const auto& [name, gauge] : registry.gauge_entries()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + detail::fmt_double_exact(gauge->value()) + "\n";
    const auto it = labeled_gauges.find(name);
    if (it != labeled_gauges.end()) {
      gauge_children(metric, *it->second);
      labeled_gauges.erase(it);
    }
  }
  for (const auto& [name, family] : labeled_gauges) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " gauge\n";
    gauge_children(metric, *family);
  }

  std::map<std::string, const LabeledFamily<LatencyHistogram>*>
      labeled_histograms;
  for (const auto& [name, family] : registry.labeled_histogram_entries())
    labeled_histograms.emplace(name, family);
  const auto histogram_block = [&](const std::string& metric,
                                   const LatencyHistogram* plain,
                                   const LabeledFamily<LatencyHistogram>*
                                       family) {
    if (options.native_histograms) {
      out += "# TYPE " + metric + " histogram\n";
      if (plain != nullptr)
        append_native_histogram(out, metric, "", *plain);
      if (family != nullptr)
        for (const auto& [labels, child] : family->entries())
          append_native_histogram(out, metric, prometheus_labels_inner(labels),
                                  *child);
    }
    if (options.summary_gauges) {
      out += "# TYPE " + metric + "_summary summary\n";
      if (plain != nullptr) append_summary_gauges(out, metric, "", *plain);
      if (family != nullptr)
        for (const auto& [labels, child] : family->entries())
          append_summary_gauges(out, metric, prometheus_labels_inner(labels),
                                *child);
    }
  };
  for (const auto& [name, histogram] : registry.histogram_entries()) {
    const std::string metric = prometheus_name(name);
    const auto it = labeled_histograms.find(name);
    const LabeledFamily<LatencyHistogram>* family =
        it != labeled_histograms.end() ? it->second : nullptr;
    histogram_block(metric, histogram, family);
    if (it != labeled_histograms.end()) labeled_histograms.erase(it);
  }
  for (const auto& [name, family] : labeled_histograms)
    histogram_block(prometheus_name(name), nullptr, family);

  return out;
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace lumen::obs
