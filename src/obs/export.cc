#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace lumen::obs {

namespace {

/// Escapes a string for JSON and CSV-in-quotes contexts.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest representation that round-trips a double exactly.
std::string fmt_double_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

/// Minimal parser for the flat JSON objects this module writes.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  /// Parses `{ "key": value, ... }`, invoking on_field(key, raw_string,
  /// number, is_string) per pair.
  template <class Callback>
  void parse(Callback&& on_field) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (peek() == '"') {
        on_field(key, parse_string(), 0.0, true);
      } else {
        on_field(key, std::string{}, parse_number(), false);
      }
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw Error("JSONL parse error at line " + std::to_string(line_no_) +
                " col " + std::to_string(pos_ + 1) + ": " + what);
  }
  [[nodiscard]] char peek() const {
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }
  char next() {
    if (pos_ >= line_.size()) fail("unexpected end of line");
    return line_[pos_++];
  }
  void expect(char c) {
    if (next() != c) fail("unexpected character");
  }
  void skip_ws() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // Only ASCII \u00xx escapes are ever written by this module.
          if (pos_ + 4 > line_.size()) fail("truncated \\u escape");
          const std::string hex = line_.substr(pos_, 4);
          pos_ += 4;
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }
  double parse_number() {
    const char* begin = line_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  const std::string& line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string route_event_to_json(const RouteEvent& e) {
  std::string out = "{";
  const auto num = [&out](const char* key, const std::string& value) {
    out += '"';
    out += key;
    out += "\":";
    out += value;
    out += ',';
  };
  const auto str = [&out](const char* key, const std::string& value) {
    out += '"';
    out += key;
    out += "\":\"";
    out += json_escape(value);
    out += "\",";
  };
  num("sequence", std::to_string(e.sequence));
  num("source", std::to_string(e.source));
  num("target", std::to_string(e.target));
  str("policy", e.policy);
  str("heap", e.heap);
  str("outcome", e.outcome);
  num("cost", fmt_double_exact(e.cost));
  num("hops", std::to_string(e.hops));
  num("conversions", std::to_string(e.conversions));
  num("aux_nodes", std::to_string(e.aux_nodes));
  num("aux_links", std::to_string(e.aux_links));
  num("relaxations", std::to_string(e.relaxations));
  num("heap_pops", std::to_string(e.heap_pops));
  num("build_seconds", fmt_double_exact(e.build_seconds));
  num("search_seconds", fmt_double_exact(e.search_seconds));
  out.back() = '}';
  return out;
}

void write_route_events_jsonl(std::ostream& out,
                              std::span<const RouteEvent> events) {
  for (const RouteEvent& e : events) out << route_event_to_json(e) << '\n';
}

std::vector<RouteEvent> read_route_events_jsonl(std::istream& in) {
  std::vector<RouteEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    RouteEvent e;
    FlatJsonParser parser(line, line_no);
    parser.parse([&e](const std::string& key, const std::string& s, double n,
                      bool is_string) {
      if (is_string) {
        if (key == "policy") e.policy = s;
        else if (key == "heap") e.heap = s;
        else if (key == "outcome") e.outcome = s;
        return;
      }
      if (key == "sequence") e.sequence = static_cast<std::uint64_t>(n);
      else if (key == "source") e.source = static_cast<std::uint32_t>(n);
      else if (key == "target") e.target = static_cast<std::uint32_t>(n);
      else if (key == "cost") e.cost = n;
      else if (key == "hops") e.hops = static_cast<std::uint32_t>(n);
      else if (key == "conversions")
        e.conversions = static_cast<std::uint32_t>(n);
      else if (key == "aux_nodes") e.aux_nodes = static_cast<std::uint64_t>(n);
      else if (key == "aux_links") e.aux_links = static_cast<std::uint64_t>(n);
      else if (key == "relaxations")
        e.relaxations = static_cast<std::uint64_t>(n);
      else if (key == "heap_pops") e.heap_pops = static_cast<std::uint64_t>(n);
      else if (key == "build_seconds") e.build_seconds = n;
      else if (key == "search_seconds") e.search_seconds = n;
    });
    events.push_back(std::move(e));
  }
  return events;
}

void write_route_events_csv(std::ostream& out,
                            std::span<const RouteEvent> events) {
  out << "sequence,source,target,policy,heap,outcome,cost,hops,conversions,"
         "aux_nodes,aux_links,relaxations,heap_pops,build_seconds,"
         "search_seconds\n";
  for (const RouteEvent& e : events) {
    out << e.sequence << ',' << e.source << ',' << e.target << ','
        << csv_quote(e.policy) << ',' << csv_quote(e.heap) << ','
        << csv_quote(e.outcome) << ',' << fmt_double_exact(e.cost) << ','
        << e.hops << ',' << e.conversions << ',' << e.aux_nodes << ','
        << e.aux_links << ',' << e.relaxations << ',' << e.heap_pops << ','
        << fmt_double_exact(e.build_seconds) << ','
        << fmt_double_exact(e.search_seconds) << '\n';
  }
}

#if LUMEN_OBS_ENABLED

namespace {

/// Registry names use dots; Prometheus wants [a-zA-Z0-9_:].
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      c = '_';
  }
  return out;
}

}  // namespace

std::string prometheus_text(const Registry& registry) {
  std::string out;
  for (const auto& [name, counter] : registry.counter_entries()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, histogram] : registry.histogram_entries()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    int highest = -1;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      if (histogram->bucket_count(b) != 0) highest = b;
    }
    for (int b = 0; b <= highest; ++b) {
      cumulative += histogram->bucket_count(b);
      out += metric + "_bucket{le=\"" +
             std::to_string(LatencyHistogram::bucket_upper_bound(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += metric + "_sum " + std::to_string(histogram->sum()) + "\n";
    out += metric + "_count " + std::to_string(cumulative) + "\n";
  }
  return out;
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace lumen::obs
