#include "obs/export.h"

#include <cctype>
#include <istream>
#include <ostream>

#include "obs/flat_json.h"

namespace lumen::obs {

namespace {

using detail::FlatJsonParser;
using detail::fmt_double_exact;
using detail::json_escape;

std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

}  // namespace

std::string route_event_to_json(const RouteEvent& e) {
  std::string out = "{";
  const auto num = [&out](const char* key, const std::string& value) {
    out += '"';
    out += key;
    out += "\":";
    out += value;
    out += ',';
  };
  const auto str = [&out](const char* key, const std::string& value) {
    out += '"';
    out += key;
    out += "\":\"";
    out += json_escape(value);
    out += "\",";
  };
  num("sequence", std::to_string(e.sequence));
  num("source", std::to_string(e.source));
  num("target", std::to_string(e.target));
  str("policy", e.policy);
  str("heap", e.heap);
  str("outcome", e.outcome);
  num("cost", fmt_double_exact(e.cost));
  num("hops", std::to_string(e.hops));
  num("conversions", std::to_string(e.conversions));
  num("aux_nodes", std::to_string(e.aux_nodes));
  num("aux_links", std::to_string(e.aux_links));
  num("relaxations", std::to_string(e.relaxations));
  num("heap_pops", std::to_string(e.heap_pops));
  num("build_seconds", fmt_double_exact(e.build_seconds));
  num("search_seconds", fmt_double_exact(e.search_seconds));
  // trace_id rides at the end of the schema (appended in v2, so pre-v2
  // consumers keyed on field order stay valid).
  num("trace_id", std::to_string(e.trace_id));
  out.back() = '}';
  return out;
}

void write_route_events_jsonl(std::ostream& out,
                              std::span<const RouteEvent> events) {
  for (const RouteEvent& e : events) out << route_event_to_json(e) << '\n';
}

std::vector<RouteEvent> read_route_events_jsonl(std::istream& in) {
  std::vector<RouteEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    RouteEvent e;
    FlatJsonParser parser(line, line_no);
    parser.parse([&e](const std::string& key, const std::string& s, double n,
                      bool is_string) {
      if (is_string) {
        if (key == "policy") e.policy = s;
        else if (key == "heap") e.heap = s;
        else if (key == "outcome") e.outcome = s;
        return;
      }
      if (key == "sequence") e.sequence = static_cast<std::uint64_t>(n);
      else if (key == "source") e.source = static_cast<std::uint32_t>(n);
      else if (key == "target") e.target = static_cast<std::uint32_t>(n);
      else if (key == "cost") e.cost = n;
      else if (key == "hops") e.hops = static_cast<std::uint32_t>(n);
      else if (key == "conversions")
        e.conversions = static_cast<std::uint32_t>(n);
      else if (key == "aux_nodes") e.aux_nodes = static_cast<std::uint64_t>(n);
      else if (key == "aux_links") e.aux_links = static_cast<std::uint64_t>(n);
      else if (key == "relaxations")
        e.relaxations = static_cast<std::uint64_t>(n);
      else if (key == "heap_pops") e.heap_pops = static_cast<std::uint64_t>(n);
      else if (key == "build_seconds") e.build_seconds = n;
      else if (key == "search_seconds") e.search_seconds = n;
      else if (key == "trace_id") e.trace_id = static_cast<std::uint64_t>(n);
    });
    events.push_back(std::move(e));
  }
  return events;
}

void write_route_events_csv(std::ostream& out,
                            std::span<const RouteEvent> events) {
  out << "sequence,source,target,policy,heap,outcome,cost,hops,conversions,"
         "aux_nodes,aux_links,relaxations,heap_pops,build_seconds,"
         "search_seconds,trace_id\n";
  for (const RouteEvent& e : events) {
    out << e.sequence << ',' << e.source << ',' << e.target << ','
        << csv_quote(e.policy) << ',' << csv_quote(e.heap) << ','
        << csv_quote(e.outcome) << ',' << fmt_double_exact(e.cost) << ','
        << e.hops << ',' << e.conversions << ',' << e.aux_nodes << ','
        << e.aux_links << ',' << e.relaxations << ',' << e.heap_pops << ','
        << fmt_double_exact(e.build_seconds) << ','
        << fmt_double_exact(e.search_seconds) << ',' << e.trace_id << '\n';
  }
}

// Registry names use dots; Prometheus wants [a-zA-Z0-9_:].
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      c = '_';
  }
  return out;
}

#if LUMEN_OBS_ENABLED

namespace {

void append_native_histogram(std::string& out, const std::string& metric,
                             const LatencyHistogram& histogram) {
  out += "# TYPE " + metric + " histogram\n";
  std::uint64_t cumulative = 0;
  int highest = -1;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (histogram.bucket_count(b) != 0) highest = b;
  }
  for (int b = 0; b <= highest; ++b) {
    cumulative += histogram.bucket_count(b);
    out += metric + "_bucket{le=\"" +
           std::to_string(LatencyHistogram::bucket_upper_bound(b)) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
  out += metric + "_sum " + std::to_string(histogram.sum()) + "\n";
  out += metric + "_count " + std::to_string(cumulative) + "\n";
}

void append_summary_gauges(std::string& out, const std::string& metric,
                           const LatencyHistogram& histogram) {
  const std::string name = metric + "_summary";
  const HistogramSummary summary = histogram.summary();
  out += "# TYPE " + name + " summary\n";
  out += name + "{quantile=\"0.5\"} " +
         detail::fmt_double_exact(summary.p50) + "\n";
  out += name + "{quantile=\"0.9\"} " +
         detail::fmt_double_exact(summary.p90) + "\n";
  out += name + "{quantile=\"0.99\"} " +
         detail::fmt_double_exact(summary.p99) + "\n";
  out += name + "_sum " + std::to_string(histogram.sum()) + "\n";
  out += name + "_count " + std::to_string(summary.count) + "\n";
}

}  // namespace

std::string prometheus_text(const Registry& registry,
                            const PrometheusOptions& options) {
  std::string out;
  for (const auto& [name, counter] : registry.counter_entries()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : registry.gauge_entries()) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + detail::fmt_double_exact(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : registry.histogram_entries()) {
    const std::string metric = prometheus_name(name);
    if (options.native_histograms)
      append_native_histogram(out, metric, *histogram);
    if (options.summary_gauges)
      append_summary_gauges(out, metric, *histogram);
  }
  return out;
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace lumen::obs
