// Machine-readable telemetry exporters.
//
// Three formats:
//   - JSONL: one flat JSON object per RouteEvent per line.  Lossless —
//     read_route_events_jsonl() round-trips the writer's output exactly
//     (doubles are printed with 17 significant digits).
//   - CSV: the same fields with a header row, for spreadsheet intake.
//   - Prometheus text exposition: every Registry counter becomes a
//     `counter` metric, every LatencyHistogram a `histogram` metric with
//     power-of-two `le` buckets, `_sum`, and `_count`.  Metric names are
//     the registry names with [.-] mapped to '_'.  Labeled families
//     render as extra series under the same metric name, one
//     `name{tenant="3",...}` sample per child, with exposition-escaped
//     label values.
//
// Field order of the JSONL/CSV schema is documented in
// docs/OBSERVABILITY.md; tests/obs/export_test.cc pins it.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/route_event.h"

namespace lumen::obs {

/// Serializes one event as a single-line flat JSON object (no newline).
[[nodiscard]] std::string route_event_to_json(const RouteEvent& event);

/// Writes one JSON object per line.
void write_route_events_jsonl(std::ostream& out,
                              std::span<const RouteEvent> events);

/// Parses JSONL as produced by write_route_events_jsonl (flat objects,
/// string or numeric values).  Unknown keys are ignored; blank lines are
/// skipped.  Throws lumen::Error on malformed input.
[[nodiscard]] std::vector<RouteEvent> read_route_events_jsonl(
    std::istream& in);

/// Writes a header row plus one CSV row per event (RFC-4180 quoting for
/// the string fields).
void write_route_events_csv(std::ostream& out,
                            std::span<const RouteEvent> events);

/// A registry instrument name as a Prometheus metric name: every
/// character outside [a-zA-Z0-9_:] becomes '_'.  Shared by the registry
/// renderer below and by consumers re-exporting decoded wire telemetry
/// (tools/lumen_collect), so it lives outside the #if.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// A label value with Prometheus text-exposition escaping: backslash,
/// double quote, and newline become `\\`, `\"`, and `\n`.
[[nodiscard]] std::string prometheus_label_value(const std::string& value);

/// A canonical TagSet labels string ("tenant=3,shard=1") rendered as a
/// Prometheus label set: `{tenant="3",shard="1"}`.  Keys are mangled
/// through prometheus_name, values escaped through
/// prometheus_label_value.  Empty input renders as "".  Lives outside
/// the #if so obs-off collectors can re-render decoded wire labels.
[[nodiscard]] std::string prometheus_labels(const std::string& canonical);

/// Prometheus rendering switches.
struct PrometheusOptions {
  /// Emit native histogram lines: cumulative `*_bucket{le="…"}` rows over
  /// the 65 log-2 buckets plus `_sum` and `_count` (the default since v2).
  bool native_histograms = true;
  /// Additionally emit the legacy summary-gauge rendering per histogram,
  /// as a `summary`-typed metric named `<metric>_summary` with
  /// quantile="0.5"/"0.9"/"0.99" rows (interpolated percentiles), `_sum`,
  /// and `_count`.  Off by default; the suffix keeps the two renderings
  /// from claiming the same metric name.
  bool summary_gauges = false;
};

#if LUMEN_OBS_ENABLED

/// Renders every instrument of `registry` in Prometheus text exposition
/// format (version 0.0.4).
[[nodiscard]] std::string prometheus_text(
    const Registry& registry = Registry::global(),
    const PrometheusOptions& options = {});

#else

[[nodiscard]] inline std::string prometheus_text(
    const Registry& = Registry::global(), const PrometheusOptions& = {}) {
  return {};
}

#endif  // LUMEN_OBS_ENABLED

}  // namespace lumen::obs
