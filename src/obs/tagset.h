// Dimensional labels for telemetry instruments.
//
// A TagSet is a tiny interned label vector — at most one value for each
// of the four dimensions this system attributes load to: `tenant`,
// `shard`, `policy`, `stage`.  The whole set packs into one u64 (four
// 16-bit slots, each 4-bit key | 12-bit value id), so a labeled child
// lookup hashes one integer instead of a string, and the hot path
//
//   static auto& fam = obs::Registry::global().labeled_counter("x");
//   fam.at(obs::TagSet{}.tenant(t)).add();
//
// stays lock-free end to end.  Small numeric values (0..2047) encode
// directly in the value id; everything else goes through a process-wide
// string interner (mutex on first sight of a value, lock-free after).
// With LUMEN_OBS_DISABLED the interner is compiled out and TagSet
// degenerates to pure integer arithmetic feeding no-op instruments.
//
// The canonical text rendering ("shard=1,tenant=3", keys in fixed
// dimension order, values backslash-escaped) is the labels format used
// by the pump snapshot JSON, the wire protocol (templates 262/263), and
// the collectors; labels_canonical/labels_parse below are the shared,
// mode-independent codec for it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace lumen::obs {

/// Label dimensions.  Order defines the canonical rendering order.
enum class TagKey : std::uint8_t {
  kNone = 0,
  kTenant = 1,
  kShard = 2,
  kPolicy = 3,
  kStage = 4,
};

/// "tenant", "shard", "policy", "stage" ("?" for kNone).
[[nodiscard]] const char* tag_key_name(TagKey key) noexcept;

namespace detail {

/// Value ids 0..2047 are the number itself; 2048..4094 are interned
/// strings; 4095 marks interner overflow (rendered as "!overflow").
inline constexpr std::uint16_t kNumericVidLimit = 2048;
inline constexpr std::uint16_t kOverflowVid = 4095;

/// Interns `value`, returning its id (kOverflowVid once the 2047-entry
/// string table is full).  Numeric strings below the limit come back as
/// their numeric id.  No-op (returns kOverflowVid) when obs is disabled.
[[nodiscard]] std::uint16_t intern_tag_value(std::string_view value);

/// Renders a value id back to text.
[[nodiscard]] std::string tag_value_text(std::uint16_t vid);

}  // namespace detail

/// Immutable value-type label set; builder calls return updated copies.
class TagSet {
 public:
  constexpr TagSet() = default;

  [[nodiscard]] TagSet tenant(std::uint64_t id) const {
    return with_numeric(TagKey::kTenant, id);
  }
  [[nodiscard]] TagSet shard(std::uint64_t id) const {
    return with_numeric(TagKey::kShard, id);
  }
  [[nodiscard]] TagSet policy(std::string_view value) const {
    return with(TagKey::kPolicy, detail::intern_tag_value(value));
  }
  [[nodiscard]] TagSet stage(std::string_view value) const {
    return with(TagKey::kStage, detail::intern_tag_value(value));
  }

  /// The packed representation (0 for an empty set); the registry's
  /// labeled-child hash key.
  [[nodiscard]] constexpr std::uint64_t key() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }

  /// (key, value) pairs in canonical dimension order.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> entries()
      const;
  /// "tenant=3,shard=1" (see labels_canonical for the escaping rules).
  [[nodiscard]] std::string canonical() const;

  friend constexpr bool operator==(TagSet, TagSet) noexcept = default;

 private:
  [[nodiscard]] TagSet with(TagKey key, std::uint16_t vid) const noexcept {
    // Unpack the (at most four) slots, replace or insert this key, and
    // repack sorted by key so equal sets always pack identically.
    std::uint16_t slots[4] = {};
    int n = 0;
    for (int i = 0; i < 4; ++i) {
      const auto slot = static_cast<std::uint16_t>(bits_ >> (16 * i));
      if (slot != 0 && static_cast<TagKey>(slot >> 12) != key)
        slots[n++] = slot;
    }
    slots[n++] = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(key) << 12) | (vid & 0x0FFF));
    for (int i = 1; i < n; ++i)  // insertion sort, n <= 4
      for (int j = i; j > 0 && slots[j - 1] > slots[j]; --j)
        std::swap(slots[j - 1], slots[j]);
    TagSet out;
    for (int i = 0; i < n; ++i)
      out.bits_ |= static_cast<std::uint64_t>(slots[i]) << (16 * i);
    return out;
  }

  [[nodiscard]] TagSet with_numeric(TagKey key, std::uint64_t id) const {
    if (id < detail::kNumericVidLimit)
      return with(key, static_cast<std::uint16_t>(id));
    return with(key, detail::intern_tag_value(std::to_string(id)));
  }

  std::uint64_t bits_ = 0;
};

/// Renders label pairs as "k=v,k=v", escaping `\`, `,` and `=` in values
/// with a backslash.  The inverse of labels_parse; compiled in both
/// build modes (collectors parse labels without an obs runtime).
[[nodiscard]] std::string labels_canonical(
    const std::vector<std::pair<std::string, std::string>>& labels);

/// Parses the canonical rendering back to pairs.  Unescapes backslash
/// sequences; tolerates a missing '=' (value becomes "").
[[nodiscard]] std::vector<std::pair<std::string, std::string>> labels_parse(
    std::string_view canonical);

}  // namespace lumen::obs
