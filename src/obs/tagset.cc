#include "obs/tagset.h"

#include <array>

namespace lumen::obs {

const char* tag_key_name(TagKey key) noexcept {
  switch (key) {
    case TagKey::kTenant:
      return "tenant";
    case TagKey::kShard:
      return "shard";
    case TagKey::kPolicy:
      return "policy";
    case TagKey::kStage:
      return "stage";
    case TagKey::kNone:
      break;
  }
  return "?";
}

std::string labels_canonical(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out.push_back(',');
    out += key;
    out.push_back('=');
    for (const char c : value) {
      if (c == '\\' || c == ',' || c == '=') out.push_back('\\');
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> labels_parse(
    std::string_view canonical) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  while (i < canonical.size()) {
    std::pair<std::string, std::string> label;
    std::string* part = &label.first;
    for (; i < canonical.size(); ++i) {
      const char c = canonical[i];
      if (c == '\\' && i + 1 < canonical.size()) {
        part->push_back(canonical[++i]);
      } else if (c == '=' && part == &label.first) {
        part = &label.second;
      } else if (c == ',') {
        ++i;
        break;
      } else {
        part->push_back(c);
      }
    }
    if (!label.first.empty() || !label.second.empty())
      out.push_back(std::move(label));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> TagSet::entries() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (int i = 0; i < 4; ++i) {
    const auto slot = static_cast<std::uint16_t>(bits_ >> (16 * i));
    if (slot == 0) continue;
    const auto key = static_cast<TagKey>(slot >> 12);
    const auto vid = static_cast<std::uint16_t>(slot & 0x0FFF);
    out.emplace_back(tag_key_name(key), detail::tag_value_text(vid));
  }
  return out;
}

std::string TagSet::canonical() const { return labels_canonical(entries()); }

namespace detail {

// Defined below, per build mode.
std::string interned_tag_text(std::uint16_t vid);

std::string tag_value_text(std::uint16_t vid) {
  if (vid < kNumericVidLimit) return std::to_string(vid);
  if (vid == kOverflowVid) return "!overflow";
  return interned_tag_text(vid);
}

}  // namespace detail
}  // namespace lumen::obs

#if LUMEN_OBS_ENABLED

#include <mutex>

namespace lumen::obs {
namespace detail {
namespace {

/// Process-wide value interner.  Insertion takes a mutex; ids are dense
/// so renderers index a stable deque-like store without locking --
/// entries are never removed, and the slot vector only grows under the
/// same mutex that assigns ids.
struct TagInterner {
  std::mutex mutex;
  std::vector<std::string> values;  // id = kNumericVidLimit + index

  static TagInterner& instance() {
    static TagInterner interner;
    return interner;
  }
};

}  // namespace

std::uint16_t intern_tag_value(std::string_view value) {
  // Numeric fast path: small decimal values reuse the numeric id space
  // so TagSet{}.policy("7") == TagSet built from the number 7.
  if (!value.empty() && value.size() <= 4 && value[0] != '0') {
    std::uint32_t n = 0;
    bool numeric = true;
    for (const char c : value) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      n = n * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (numeric && n < kNumericVidLimit) return static_cast<std::uint16_t>(n);
  } else if (value == "0") {
    return 0;
  }

  auto& interner = TagInterner::instance();
  const std::scoped_lock lock(interner.mutex);
  for (std::size_t i = 0; i < interner.values.size(); ++i) {
    if (interner.values[i] == value)
      return static_cast<std::uint16_t>(kNumericVidLimit + i);
  }
  const std::size_t next = interner.values.size();
  if (kNumericVidLimit + next >= kOverflowVid) return kOverflowVid;
  interner.values.emplace_back(value);
  return static_cast<std::uint16_t>(kNumericVidLimit + next);
}

std::string interned_tag_text(std::uint16_t vid) {
  auto& interner = TagInterner::instance();
  const std::scoped_lock lock(interner.mutex);
  const std::size_t index = static_cast<std::size_t>(vid) - kNumericVidLimit;
  if (index >= interner.values.size()) return "?";
  return interner.values[index];
}

}  // namespace detail
}  // namespace lumen::obs

#else  // LUMEN_OBS_ENABLED

namespace lumen::obs {
namespace detail {

std::uint16_t intern_tag_value(std::string_view) { return kOverflowVid; }
std::string interned_tag_text(std::uint16_t) { return "!overflow"; }

}  // namespace detail
}  // namespace lumen::obs

#endif  // LUMEN_OBS_ENABLED
