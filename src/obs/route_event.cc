#include "obs/route_event.h"

#include "obs/registry.h"

namespace lumen::obs {

void note_route_events_dropped(std::uint64_t n) {
  // No-op when the library is built with LUMEN_OBS_DISABLED (the dummy
  // counter swallows the add).
  static Counter& events_dropped =
      Registry::global().counter("lumen.obs.events_dropped");
  events_dropped.add(n);
}

}  // namespace lumen::obs
