#include "core/all_pairs.h"

#include "core/route_engine.h"

namespace lumen {

AllPairsRouter::AllPairsRouter(const WdmNetwork& net)
    : net_(&net),
      aux_(AuxiliaryGraph::build_all_pairs(net)),
      trees_(net.num_nodes()) {}

AllPairsRouter::~AllPairsRouter() = default;

const ShortestPathTree& AllPairsRouter::tree_for(NodeId s) {
  LUMEN_REQUIRE(s.value() < net_->num_nodes());
  auto& slot = trees_[s.value()];
  if (!slot.has_value()) {
    slot = dijkstra(aux_.graph(), aux_.source_terminal(s));
    ++trees_computed_;
  }
  return *slot;
}

double AllPairsRouter::cost(NodeId s, NodeId t) {
  LUMEN_REQUIRE(t.value() < net_->num_nodes());
  if (s == t) return 0.0;
  const ShortestPathTree& tree = tree_for(s);
  return tree.dist[aux_.sink_terminal(t).value()];
}

RouteResult AllPairsRouter::route(NodeId s, NodeId t) {
  RouteResult result;
  result.stats.aux_nodes = aux_.stats().total_nodes();
  result.stats.aux_links = aux_.stats().total_links();
  result.stats.build_seconds = aux_.stats().build_seconds;
  if (s == t) {
    LUMEN_REQUIRE(s.value() < net_->num_nodes());
    result.found = true;
    result.cost = 0.0;
    return result;
  }
  const ShortestPathTree& tree = tree_for(s);
  const NodeId sink = aux_.sink_terminal(t);
  result.stats.search_pops = tree.pops;
  result.stats.search_relaxations = tree.relaxations;
  if (!tree.reached(sink)) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = tree.dist[sink.value()];
  const auto aux_path = extract_path(aux_.graph(), tree, sink);
  LUMEN_ASSERT(aux_path.has_value());
  result.path = aux_.to_semilightpath(*aux_path);
  result.switches = result.path.switch_settings(*net_);
  return result;
}

std::vector<std::vector<double>> AllPairsRouter::cost_matrix() {
  const std::uint32_t n = net_->num_nodes();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::uint32_t s = 0; s < n; ++s)
    for (std::uint32_t t = 0; t < n; ++t)
      matrix[s][t] = cost(NodeId{s}, NodeId{t});
  return matrix;
}

RouteEngine& AllPairsRouter::matrix_engine() {
  if (engine_ == nullptr) {
    RouteEngine::Options options;
    options.num_landmarks = 0;      // bulk sweeps are not goal-directed
    options.build_hierarchy = true; // the sweeps' substrate
    engine_ = std::make_unique<RouteEngine>(*net_, options);
  }
  return *engine_;
}

std::vector<std::vector<double>> AllPairsRouter::cost_matrix(
    unsigned threads) {
  if (threads == 1) return cost_matrix();
  // Lane-packed sweeps over the flattened core: every worker drains
  // chunks of up to kMaxLanes sources, one scratch and one one-to-all
  // sweep per chunk, instead of the old per-source tree Dijkstras (which
  // re-allocated their whole search state every call).  Isolated sources
  // return their +inf row without any search at all.
  const std::uint32_t n = net_->num_nodes();
  std::vector<NodeId> sources;
  sources.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) sources.push_back(NodeId{v});
  return matrix_engine().bulk_costs(sources, threads);
}

}  // namespace lumen
