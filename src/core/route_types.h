// Result and instrumentation types shared by all routers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "wdm/semilightpath.h"

namespace lumen {

/// Size and effort instrumentation for one routing run.  The size fields
/// let tests check the paper's Observations 1–5 and benches expose the
/// structural difference between the Liang–Shen and CFZ constructions.
struct RouteStats {
  /// Nodes in the auxiliary graph actually searched.
  std::uint64_t aux_nodes = 0;
  /// Links in the auxiliary graph actually searched.
  std::uint64_t aux_links = 0;
  /// Wavelength subnetworks searched (lightpath routing only: one Dijkstra
  /// per wavelength; 0 for single-search semilightpath routing).
  std::uint64_t wavelengths_searched = 0;
  /// Heap pops during the shortest-path search.
  std::uint64_t search_pops = 0;
  /// Nodes settled by the search (== search_pops for the heap codes here,
  /// which never lazy-delete; kept explicit so goal-directed and plain
  /// searches report comparable effort).
  std::uint64_t search_settled = 0;
  /// Successful relaxations during the search.
  std::uint64_t search_relaxations = 0;
  /// Relaxations skipped because a goal-directed potential proved the
  /// node cannot reach the target (0 for uninformed searches).
  std::uint64_t search_pruned = 0;
  /// Seconds spent building the auxiliary graph.
  double build_seconds = 0.0;
  /// Seconds spent in the shortest-path search.
  double search_seconds = 0.0;

  [[nodiscard]] double total_seconds() const noexcept {
    return build_seconds + search_seconds;
  }
};

/// Fine-grained stage decomposition of one routing call, populated by the
/// routers when the lumen::obs subsystem is enabled (std::nullopt under
/// LUMEN_OBS_DISABLED).  Unlike RouteStats — which exists for the paper's
/// complexity checks — this is operational telemetry: the same stages are
/// also emitted as obs::TraceSpan records ("route.aux_build",
/// "route.dijkstra", "route.path_extract").
struct RouteTelemetry {
  double aux_build_seconds = 0.0;
  double dijkstra_seconds = 0.0;
  double path_extract_seconds = 0.0;

  [[nodiscard]] double total_seconds() const noexcept {
    return aux_build_seconds + dijkstra_seconds + path_extract_seconds;
  }
};

/// The outcome of a single-pair routing query.
struct RouteResult {
  /// True when a semilightpath from s to t exists.
  bool found = false;
  /// C(P) of the optimal semilightpath (kInfiniteCost when !found).
  double cost = 0.0;
  /// The optimal semilightpath (empty when !found, or when s == t).
  Semilightpath path;
  /// Wavelength-conversion switch settings along the path.
  std::vector<SwitchSetting> switches;
  /// Instrumentation.
  RouteStats stats;
  /// Stage telemetry; engaged only when lumen::obs is compiled in.
  std::optional<RouteTelemetry> telemetry;
};

}  // namespace lumen
