#include "core/k_shortest.h"

#include "core/aux_graph.h"
#include "graph/yen_ksp.h"

namespace lumen {

std::vector<RankedRoute> k_shortest_semilightpaths(const WdmNetwork& net,
                                                   NodeId s, NodeId t,
                                                   std::uint32_t K) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  LUMEN_REQUIRE_MSG(s != t, "alternatives are defined for distinct endpoints");
  LUMEN_REQUIRE(K >= 1);

  const AuxiliaryGraph aux = AuxiliaryGraph::build_single_pair(net, s, t);
  const auto ranked = yen_k_shortest_paths(
      aux.graph(), aux.source_terminal(), aux.sink_terminal(), K);

  std::vector<RankedRoute> routes;
  routes.reserve(ranked.size());
  for (const RankedPath& p : ranked) {
    RankedRoute route;
    route.cost = p.cost;
    route.path = aux.to_semilightpath(p.links);
    route.switches = route.path.switch_settings(net);
    routes.push_back(std::move(route));
  }
  return routes;
}

}  // namespace lumen
