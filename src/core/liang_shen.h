// The Liang–Shen optimal semilightpath algorithm (Theorem 1).
//
// Builds the layered auxiliary graph G_{s,t} and runs Dijkstra (Fibonacci
// heap by default) from s' to t''.  Total cost
// O(k^2 n + k m + k n log(kn)); for networks with |Λ(e)| <= k_0 the same
// code meets Theorem 4's O(d^2 n k_0^2 + m k_0 log n) — independent of the
// universe size k — because construction never enumerates Λ itself.
#pragma once

#include "core/aux_graph.h"
#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// Heap used inside the Dijkstra phase (the bench E8 ablation axis).
enum class HeapKind {
  kFibonacci,   ///< Fredman–Tarjan heap: the paper's choice
  kBinary,      ///< classic 2-ary array heap
  kQuaternary,  ///< cache-friendlier 4-ary array heap
  kPairing,     ///< self-adjusting pairing heap
};

/// Finds the optimal semilightpath from s to t (Theorem 1).
///
/// Returns found=false when no semilightpath exists.  s == t yields an
/// empty path of cost 0.  The result carries the wavelength assignment on
/// every hop and the switch settings at conversion nodes.
[[nodiscard]] RouteResult route_semilightpath(
    const WdmNetwork& net, NodeId s, NodeId t,
    HeapKind heap = HeapKind::kFibonacci);

/// As route_semilightpath, but reuses a prebuilt single-pair auxiliary
/// graph (the caller owns the build cost; useful for benches that separate
/// construction from search).
[[nodiscard]] RouteResult route_on_aux(const WdmNetwork& net,
                                       const AuxiliaryGraph& aux,
                                       HeapKind heap = HeapKind::kFibonacci);

/// Finds the optimal *lightpath* (single wavelength end-to-end, no
/// conversion) from s to t: one Dijkstra per wavelength on the subnetwork
/// where that wavelength is available.  Returns found=false when every
/// wavelength is blocked.  This is the classic wavelength-continuity
/// routing the semilightpath model generalizes.
[[nodiscard]] RouteResult route_lightpath(const WdmNetwork& net, NodeId s,
                                          NodeId t);

}  // namespace lumen
