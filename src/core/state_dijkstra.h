// Independent test oracle: Dijkstra over the implicit (node, wavelength)
// state space.
//
// State (v, λ) means "standing at node v, having arrived on wavelength λ";
// a transition takes an outgoing link e with some λ' ∈ Λ(e) at cost
// c_v(λ, λ') + w(e, λ').  This solves exactly Equation (1) — one conversion
// per junction — without materializing any auxiliary graph, so it shares no
// code with the Liang–Shen or CFZ implementations and serves as a
// correctness oracle in randomized tests.  O(nk) states, lazy-deletion
// binary heap; asymptotically slower than Theorem 1 but simple and exact.
#pragma once

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// Optimal semilightpath from s to t via state-space Dijkstra.
/// Result contract identical to route_semilightpath.
[[nodiscard]] RouteResult state_dijkstra_route(const WdmNetwork& net, NodeId s,
                                               NodeId t);

}  // namespace lumen
