// Multicast semilightpath routing: a light-forest from one source to many
// destinations (extension).
//
// Video distribution and data replication — applications the paper's
// introduction cites — need one-to-many connections.  We route the whole
// group on a single shortest-path tree of the auxiliary graph rooted at
// s', so per-destination routes are individually optimal AND overlapping
// routes share resources: where two destinations' auxiliary paths share a
// prefix they use the same physical links *on the same wavelengths*, so
// one transmitted copy serves both (the defining property of a light-
// tree).  Resource accounting reports exactly that sharing.
#pragma once

#include <span>
#include <vector>

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// Per-destination leg of a multicast group.
struct MulticastLeg {
  NodeId destination;
  bool reached = false;
  double cost = 0.0;  ///< optimal single-pair cost (kInfiniteCost if not)
  Semilightpath path;
};

/// Result of a multicast routing query.
struct MulticastResult {
  std::vector<MulticastLeg> legs;
  /// True when every destination was reached.
  bool all_reached = false;
  /// Distinct (link, wavelength) pairs used by the whole forest — what
  /// the network actually provisions.
  std::uint64_t tree_resources = 0;
  /// Σ per-leg hop counts — what independent unicasts would provision.
  std::uint64_t unicast_resources = 0;

  /// unicast_resources - tree_resources: links saved by sharing.
  [[nodiscard]] std::uint64_t sharing() const noexcept {
    return unicast_resources - tree_resources;
  }
};

/// Routes s to every destination on one auxiliary shortest-path tree.
/// Each leg's cost equals the single-pair optimum (Theorem 1 applied
/// per destination).  Destinations equal to s are reported reached with
/// an empty path.  Requires at least one destination.
[[nodiscard]] MulticastResult route_multicast(
    const WdmNetwork& net, NodeId s, std::span<const NodeId> destinations);

}  // namespace lumen
