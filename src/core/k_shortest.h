// K cheapest alternative semilightpaths (extension).
//
// Protection and restoration routing — the online setting the paper's
// introduction motivates — needs ranked alternatives, not just the single
// optimum: if the best route cannot be provisioned (a resource race, a
// failed switch), the next-cheapest is tried.  We run Yen's algorithm on
// the auxiliary graph G_{s,t}; every loopless auxiliary path maps to a
// distinct semilightpath, ranked by Equation (1) cost.
//
// Note on distinctness: two different auxiliary paths always differ in
// some (link, wavelength) hop or switch setting, so the returned
// semilightpaths are pairwise distinct as routing decisions, even when
// their link sequences coincide (same links, different wavelengths).
#pragma once

#include <cstdint>
#include <vector>

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// One ranked alternative.
struct RankedRoute {
  double cost = 0.0;
  Semilightpath path;
  std::vector<SwitchSetting> switches;
};

/// The K cheapest distinct semilightpaths from s to t in non-decreasing
/// cost order (fewer than K when the network does not admit that many
/// loopless auxiliary routes).  Requires s != t and K >= 1.
[[nodiscard]] std::vector<RankedRoute> k_shortest_semilightpaths(
    const WdmNetwork& net, NodeId s, NodeId t, std::uint32_t K);

}  // namespace lumen
