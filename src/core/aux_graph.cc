#include "core/aux_graph.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace lumen {

NodeId AuxiliaryGraph::add_aux_node(AuxNodeInfo info) {
  const NodeId id = graph_.add_node();
  node_info_.push_back(info);
  return id;
}

LinkId AuxiliaryGraph::add_aux_link(NodeId from, NodeId to, double weight,
                                    AuxLinkInfo info) {
  const LinkId id = graph_.add_link(from, to, weight);
  link_info_.push_back(info);
  return id;
}

NodeId AuxiliaryGraph::lookup(const LambdaIndex& index, Wavelength lambda) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), lambda,
      [](const auto& entry, Wavelength l) { return entry.first < l; });
  if (it != index.end() && it->first == lambda) return it->second;
  return NodeId::invalid();
}

AuxiliaryGraph AuxiliaryGraph::build_common(const WdmNetwork& net) {
  Stopwatch timer;
  AuxiliaryGraph aux;
  const std::uint32_t n = net.num_nodes();
  aux.x_index_.resize(n);
  aux.y_index_.resize(n);

  // --- Gadget nodes: X_v from Λ_in(G_M, v), Y_v from Λ_out(G_M, v). ----
  //
  // We enumerate wavelengths from the incident links only (never the whole
  // universe Λ), so construction cost is independent of k as Section IV
  // requires.  The per-node index is deduplicated via sort+unique.
  std::vector<Wavelength> scratch;
  for (std::uint32_t vi = 0; vi < n; ++vi) {
    const NodeId v{vi};

    scratch.clear();
    for (const LinkId e : net.in_links(v))
      for (const auto& lw : net.available(e)) scratch.push_back(lw.lambda);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    for (const Wavelength lambda : scratch) {
      const NodeId x = aux.add_aux_node({AuxNodeKind::kIn, v, lambda});
      aux.x_index_[vi].emplace_back(lambda, x);
    }

    scratch.clear();
    for (const LinkId e : net.out_links(v))
      for (const auto& lw : net.available(e)) scratch.push_back(lw.lambda);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    for (const Wavelength lambda : scratch) {
      const NodeId y = aux.add_aux_node({AuxNodeKind::kOut, v, lambda});
      aux.y_index_[vi].emplace_back(lambda, y);
    }

    aux.stats_.gadget_nodes +=
        aux.x_index_[vi].size() + aux.y_index_[vi].size();
  }

  // --- Gadget links E_v: x_v(λ) -> y_v(λ') whenever allowed. -----------
  const ConversionModel& conv = net.conversion();
  for (std::uint32_t vi = 0; vi < n; ++vi) {
    const NodeId v{vi};
    for (const auto& [lambda, x] : aux.x_index_[vi]) {
      for (const auto& [lambda_out, y] : aux.y_index_[vi]) {
        const double c = conv.cost(v, lambda, lambda_out);
        if (c == kInfiniteCost) continue;
        aux.add_aux_link(
            x, y, c,
            {AuxLinkKind::kConversion, LinkId::invalid(), v, lambda,
             lambda_out});
        ++aux.stats_.gadget_links;
      }
    }
  }

  // --- E_org: each G_M parallel link becomes y_u(λ) -> x_v(λ). ---------
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    const NodeId u = net.tail(e);
    const NodeId v = net.head(e);
    for (const auto& lw : net.available(e)) {
      ++aux.stats_.multigraph_links;
      const NodeId y = lookup(aux.y_index_[u.value()], lw.lambda);
      const NodeId x = lookup(aux.x_index_[v.value()], lw.lambda);
      LUMEN_ASSERT(y.valid() && x.valid());
      aux.add_aux_link(y, x, lw.cost,
                       {AuxLinkKind::kTransmission, e, NodeId::invalid(),
                        lw.lambda, lw.lambda});
      ++aux.stats_.transmission_links;
    }
  }
  aux.stats_.build_seconds = timer.seconds();
  return aux;
}

AuxiliaryGraph AuxiliaryGraph::build_single_pair(const WdmNetwork& net,
                                                 NodeId s, NodeId t) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  LUMEN_REQUIRE_MSG(s != t, "single-pair auxiliary graph requires s != t");
  Stopwatch timer;
  AuxiliaryGraph aux = build_common(net);
  aux.all_pairs_ = false;

  aux.single_source_terminal_ = aux.add_aux_node(
      {AuxNodeKind::kSourceTerminal, s, Wavelength::invalid()});
  aux.single_sink_terminal_ = aux.add_aux_node(
      {AuxNodeKind::kSinkTerminal, t, Wavelength::invalid()});
  aux.stats_.terminal_nodes = 2;

  for (const auto& [lambda, y] : aux.y_index_[s.value()]) {
    aux.add_aux_link(aux.single_source_terminal_, y, 0.0,
                     {AuxLinkKind::kSourceTie, LinkId::invalid(), s,
                      Wavelength::invalid(), lambda});
    ++aux.stats_.terminal_links;
  }
  for (const auto& [lambda, x] : aux.x_index_[t.value()]) {
    aux.add_aux_link(x, aux.single_sink_terminal_, 0.0,
                     {AuxLinkKind::kSinkTie, LinkId::invalid(), t, lambda,
                      Wavelength::invalid()});
    ++aux.stats_.terminal_links;
  }
  aux.stats_.build_seconds += timer.seconds();
  return aux;
}

AuxiliaryGraph AuxiliaryGraph::build_core(const WdmNetwork& net) {
  AuxiliaryGraph aux = build_common(net);
  aux.all_pairs_ = false;
  return aux;
}

AuxiliaryGraph AuxiliaryGraph::build_all_pairs(const WdmNetwork& net) {
  Stopwatch timer;
  AuxiliaryGraph aux = build_common(net);
  aux.all_pairs_ = true;
  const std::uint32_t n = net.num_nodes();
  aux.source_terminals_.resize(n);
  aux.sink_terminals_.resize(n);

  for (std::uint32_t vi = 0; vi < n; ++vi) {
    const NodeId v{vi};
    aux.source_terminals_[vi] = aux.add_aux_node(
        {AuxNodeKind::kSourceTerminal, v, Wavelength::invalid()});
    aux.sink_terminals_[vi] = aux.add_aux_node(
        {AuxNodeKind::kSinkTerminal, v, Wavelength::invalid()});
    aux.stats_.terminal_nodes += 2;
    for (const auto& [lambda, y] : aux.y_index_[vi]) {
      aux.add_aux_link(aux.source_terminals_[vi], y, 0.0,
                       {AuxLinkKind::kSourceTie, LinkId::invalid(), v,
                        Wavelength::invalid(), lambda});
      ++aux.stats_.terminal_links;
    }
    for (const auto& [lambda, x] : aux.x_index_[vi]) {
      aux.add_aux_link(x, aux.sink_terminals_[vi], 0.0,
                       {AuxLinkKind::kSinkTie, LinkId::invalid(), v, lambda,
                        Wavelength::invalid()});
      ++aux.stats_.terminal_links;
    }
  }
  aux.stats_.build_seconds += timer.seconds();
  return aux;
}

NodeId AuxiliaryGraph::source_terminal() const {
  LUMEN_REQUIRE_MSG(!all_pairs_, "single-pair accessor on all-pairs graph");
  return single_source_terminal_;
}

NodeId AuxiliaryGraph::sink_terminal() const {
  LUMEN_REQUIRE_MSG(!all_pairs_, "single-pair accessor on all-pairs graph");
  return single_sink_terminal_;
}

NodeId AuxiliaryGraph::source_terminal(NodeId v) const {
  LUMEN_REQUIRE_MSG(all_pairs_, "all-pairs accessor on single-pair graph");
  LUMEN_REQUIRE(v.value() < source_terminals_.size());
  return source_terminals_[v.value()];
}

NodeId AuxiliaryGraph::sink_terminal(NodeId v) const {
  LUMEN_REQUIRE_MSG(all_pairs_, "all-pairs accessor on single-pair graph");
  LUMEN_REQUIRE(v.value() < sink_terminals_.size());
  return sink_terminals_[v.value()];
}

const AuxNodeInfo& AuxiliaryGraph::node_info(NodeId aux) const {
  LUMEN_REQUIRE(aux.value() < node_info_.size());
  return node_info_[aux.value()];
}

const AuxLinkInfo& AuxiliaryGraph::link_info(LinkId aux) const {
  LUMEN_REQUIRE(aux.value() < link_info_.size());
  return link_info_[aux.value()];
}

NodeId AuxiliaryGraph::x_node(NodeId v, Wavelength lambda) const {
  LUMEN_REQUIRE(v.value() < x_index_.size());
  return lookup(x_index_[v.value()], lambda);
}

NodeId AuxiliaryGraph::y_node(NodeId v, Wavelength lambda) const {
  LUMEN_REQUIRE(v.value() < y_index_.size());
  return lookup(y_index_[v.value()], lambda);
}

std::uint32_t AuxiliaryGraph::x_size(NodeId v) const {
  LUMEN_REQUIRE(v.value() < x_index_.size());
  return static_cast<std::uint32_t>(x_index_[v.value()].size());
}

std::uint32_t AuxiliaryGraph::y_size(NodeId v) const {
  LUMEN_REQUIRE(v.value() < y_index_.size());
  return static_cast<std::uint32_t>(y_index_[v.value()].size());
}

std::span<const std::pair<Wavelength, NodeId>> AuxiliaryGraph::x_nodes(
    NodeId v) const {
  LUMEN_REQUIRE(v.value() < x_index_.size());
  return x_index_[v.value()];
}

std::span<const std::pair<Wavelength, NodeId>> AuxiliaryGraph::y_nodes(
    NodeId v) const {
  LUMEN_REQUIRE(v.value() < y_index_.size());
  return y_index_[v.value()];
}

Semilightpath AuxiliaryGraph::to_semilightpath(
    std::span<const LinkId> aux_path) const {
  Semilightpath path;
  for (const LinkId aux_link : aux_path) {
    const AuxLinkInfo& info = link_info(aux_link);
    if (info.kind == AuxLinkKind::kTransmission) {
      path.append(Hop{info.physical_link, info.from});
    }
  }
  return path;
}

}  // namespace lumen
