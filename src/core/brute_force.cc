#include "core/brute_force.h"

#include <vector>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/stopwatch.h"

namespace lumen {

namespace {

struct SearchContext {
  const WdmNetwork& net;
  NodeId target;
  std::uint32_t max_hops;
  std::vector<Hop> current;
  double current_cost = 0.0;
  double best_cost = kInfiniteCost;
  std::vector<Hop> best;
  std::uint64_t expansions = 0;
};

void explore(SearchContext& ctx, NodeId at, Wavelength in_lambda) {
  if (at == ctx.target && !ctx.current.empty()) {
    if (ctx.current_cost < ctx.best_cost) {
      ctx.best_cost = ctx.current_cost;
      ctx.best = ctx.current;
    }
    // Do not return: a longer walk through t could not be cheaper for
    // reaching t itself (costs are non-negative), so stopping here is safe.
    return;
  }
  if (ctx.current.size() >= ctx.max_hops) return;

  for (const LinkId e : ctx.net.out_links(at)) {
    for (const auto& lw : ctx.net.available(e)) {
      double step = lw.cost;
      if (in_lambda.valid()) {
        const double conv = ctx.net.conversion_cost(at, in_lambda, lw.lambda);
        if (conv == kInfiniteCost) continue;
        step += conv;
      }
      if (ctx.current_cost + step >= ctx.best_cost) continue;  // prune
      ++ctx.expansions;
      ctx.current.push_back(Hop{e, lw.lambda});
      ctx.current_cost += step;
      explore(ctx, ctx.net.head(e), lw.lambda);
      ctx.current_cost -= step;
      ctx.current.pop_back();
    }
  }
}

}  // namespace

RouteResult brute_force_route(const WdmNetwork& net, NodeId s, NodeId t,
                              std::uint32_t max_hops) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  RouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }

  Stopwatch timer;
  SearchContext ctx{net, t, max_hops, {}, 0.0, kInfiniteCost, {}, 0};
  explore(ctx, s, Wavelength::invalid());
  result.stats.search_seconds = timer.seconds();
  result.stats.search_pops = ctx.expansions;

  if (ctx.best_cost == kInfiniteCost) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = ctx.best_cost;
  result.path = Semilightpath(std::move(ctx.best));
  result.switches = result.path.switch_settings(net);
  return result;
}

}  // namespace lumen
