#include "core/multicast.h"

#include <unordered_set>

#include "core/aux_graph.h"
#include "graph/dijkstra.h"

namespace lumen {

MulticastResult route_multicast(const WdmNetwork& net, NodeId s,
                                std::span<const NodeId> destinations) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE_MSG(!destinations.empty(), "multicast needs destinations");
  for (const NodeId d : destinations)
    LUMEN_REQUIRE(d.value() < net.num_nodes());

  MulticastResult result;
  result.legs.reserve(destinations.size());

  // One tree over G_all rooted at s' answers every destination; shared
  // tree prefixes are the light-tree sharing we account for.
  const AuxiliaryGraph aux = AuxiliaryGraph::build_all_pairs(net);
  const ShortestPathTree tree = dijkstra(aux.graph(), aux.source_terminal(s));

  // Distinct (link, λ) pairs across the forest, keyed by the auxiliary
  // transmission link id (one aux link == one (physical link, λ) pair).
  std::unordered_set<std::uint32_t> used_aux_links;

  bool all = true;
  for (const NodeId d : destinations) {
    MulticastLeg leg;
    leg.destination = d;
    if (d == s) {
      leg.reached = true;
      leg.cost = 0.0;
      result.legs.push_back(std::move(leg));
      continue;
    }
    const NodeId sink = aux.sink_terminal(d);
    if (!tree.reached(sink)) {
      leg.reached = false;
      leg.cost = kInfiniteCost;
      all = false;
      result.legs.push_back(std::move(leg));
      continue;
    }
    leg.reached = true;
    leg.cost = tree.dist[sink.value()];
    const auto aux_path = extract_path(aux.graph(), tree, sink);
    LUMEN_ASSERT(aux_path.has_value());
    for (const LinkId aux_link : *aux_path) {
      if (aux.link_info(aux_link).kind == AuxLinkKind::kTransmission)
        used_aux_links.insert(aux_link.value());
    }
    leg.path = aux.to_semilightpath(*aux_path);
    result.unicast_resources += leg.path.length();
    result.legs.push_back(std::move(leg));
  }
  result.all_reached = all;
  result.tree_resources = used_aux_links.size();
  return result;
}

}  // namespace lumen
