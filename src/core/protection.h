// Dedicated-protection routing: a working/backup semilightpath pair on
// link-disjoint physical routes (extension).
//
// 1+1 protection provisions two semilightpaths that share no physical
// link, so any single span cut leaves the backup intact.  With wavelength
// conversion in play the jointly-cheapest disjoint pair is not a pure
// min-cost-flow problem (Suurballe's transformation does not carry the
// per-junction conversion terms), so we use the standard two-step
// heuristic — route the working path optimally, erase its physical links,
// route the backup on the remainder — plus an iterated variant that also
// tries each of the K cheapest working paths and keeps the best pair.
// The two-step heuristic can fail on "trap topologies" where the optimal
// working path blocks every backup; the iterated variant escapes any trap
// that some top-K working path avoids.
#pragma once

#include <cstdint>
#include <optional>

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// A working/backup pair of link-disjoint semilightpaths.
struct ProtectedPair {
  Semilightpath working;
  double working_cost = 0.0;
  Semilightpath backup;
  double backup_cost = 0.0;

  [[nodiscard]] double total_cost() const noexcept {
    return working_cost + backup_cost;
  }
};

/// Two-step heuristic: optimal working path, then optimal backup on the
/// network minus the working path's physical links.  Returns std::nullopt
/// when no link-disjoint pair is found this way.
[[nodiscard]] std::optional<ProtectedPair> route_protected_pair(
    const WdmNetwork& net, NodeId s, NodeId t);

/// Iterated variant: tries each of the `num_candidates` cheapest working
/// paths and returns the pair with the smallest total cost (still a
/// heuristic, but escapes trap topologies the plain two-step falls into).
[[nodiscard]] std::optional<ProtectedPair> route_protected_pair_iterated(
    const WdmNetwork& net, NodeId s, NodeId t,
    std::uint32_t num_candidates = 4);

}  // namespace lumen
