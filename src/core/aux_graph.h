// The layered auxiliary graph of Liang & Shen (Section III).
//
// Construction chain:
//   G_M : multigraph with one parallel link per (e, λ ∈ Λ(e)), weight w(e,λ).
//   G_v : per-node weighted bipartite gadget (X_v from Λ_in(G_M,v), Y_v from
//         Λ_out(G_M,v)); link x_λ -> y_λ' of weight c_v(λ,λ') whenever the
//         conversion is allowed (weight 0 when λ = λ').
//   G'  : all gadgets plus E_org — each G_M link (u,v) on λ becomes
//         y-node(u,λ) -> x-node(v,λ) with weight w(e,λ).
//   G_{s,t} : G' plus terminals s' -> Y_s and X_t -> t'' (weight 0), or
//   G_all   : G' plus per-node terminals v' -> Y_v and X_v -> v''
//             (Corollary 1, for all-pairs queries).
//
// A shortest s'→t'' path in the auxiliary graph maps 1:1 to an optimal
// semilightpath of G, including the wavelength of every link and the switch
// settings at conversion nodes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/route_types.h"
#include "graph/digraph.h"
#include "wdm/network.h"
#include "wdm/semilightpath.h"

namespace lumen {

/// Role of an auxiliary-graph node.
enum class AuxNodeKind : std::uint8_t {
  kIn,              ///< x ∈ X_v: "at v having arrived on λ"
  kOut,             ///< y ∈ Y_v: "at v about to leave on λ"
  kSourceTerminal,  ///< s' (single-pair) or v' (all-pairs)
  kSinkTerminal,    ///< t'' (single-pair) or v'' (all-pairs)
};

/// What an auxiliary node stands for in the physical network.
struct AuxNodeInfo {
  AuxNodeKind kind;
  NodeId node;        ///< the physical node v
  Wavelength lambda;  ///< invalid for terminals
};

/// Role of an auxiliary-graph link.
enum class AuxLinkKind : std::uint8_t {
  kConversion,    ///< gadget link x_v(λ) -> y_v(λ'), weight c_v(λ,λ')
  kTransmission,  ///< E_org link y_u(λ) -> x_v(λ), weight w(e,λ)
  kSourceTie,     ///< s'/v' -> Y, weight 0
  kSinkTie,       ///< X -> t''/v'', weight 0
};

/// What an auxiliary link stands for.
struct AuxLinkInfo {
  AuxLinkKind kind;
  LinkId physical_link;  ///< valid for kTransmission
  NodeId node;           ///< valid for kConversion (where the switch sits)
  Wavelength from;       ///< conversion source / transmission wavelength
  Wavelength to;         ///< conversion target / transmission wavelength
};

/// Size accounting matching the paper's Observations 1–5.
struct AuxGraphStats {
  std::uint64_t multigraph_links = 0;    ///< |E_M| = Σ_e |Λ(e)|
  std::uint64_t gadget_nodes = 0;        ///< Σ_v (|X_v| + |Y_v|)
  std::uint64_t gadget_links = 0;        ///< Σ_v |E_v|
  std::uint64_t transmission_links = 0;  ///< |E_org|
  std::uint64_t terminal_nodes = 0;
  std::uint64_t terminal_links = 0;
  double build_seconds = 0.0;

  [[nodiscard]] std::uint64_t total_nodes() const noexcept {
    return gadget_nodes + terminal_nodes;
  }
  [[nodiscard]] std::uint64_t total_links() const noexcept {
    return gadget_links + transmission_links + terminal_links;
  }
};

/// The materialized auxiliary graph with its metadata maps.
class AuxiliaryGraph {
 public:
  /// Builds G_{s,t} for a single-pair query.  Requires s != t.
  [[nodiscard]] static AuxiliaryGraph build_single_pair(const WdmNetwork& net,
                                                        NodeId s, NodeId t);

  /// Builds G_all with per-node terminals (Corollary 1).
  [[nodiscard]] static AuxiliaryGraph build_all_pairs(const WdmNetwork& net);

  /// Builds the terminal-free core G' (gadgets + E_org) only.  This is the
  /// build-once structure the RouteEngine flattens: any (s, t) query can be
  /// answered on it by seeding a multi-source search at Y_s ("virtual
  /// terminals") instead of materializing s'/t''.  Terminal accessors are
  /// invalid on a core graph.
  [[nodiscard]] static AuxiliaryGraph build_core(const WdmNetwork& net);

  /// The underlying weighted digraph to run shortest paths on.
  [[nodiscard]] const Digraph& graph() const noexcept { return graph_; }

  /// s' / t'' of a single-pair graph.  Requires single-pair mode.
  [[nodiscard]] NodeId source_terminal() const;
  [[nodiscard]] NodeId sink_terminal() const;

  /// v' / v'' of an all-pairs graph.  Requires all-pairs mode.
  [[nodiscard]] NodeId source_terminal(NodeId v) const;
  [[nodiscard]] NodeId sink_terminal(NodeId v) const;

  [[nodiscard]] bool is_all_pairs() const noexcept { return all_pairs_; }

  /// Metadata of an auxiliary node / link.
  [[nodiscard]] const AuxNodeInfo& node_info(NodeId aux) const;
  [[nodiscard]] const AuxLinkInfo& link_info(LinkId aux) const;

  /// The x-node (v, λ) ∈ X_v, or an invalid id when λ ∉ Λ_in(G_M, v).
  [[nodiscard]] NodeId x_node(NodeId v, Wavelength lambda) const;
  /// The y-node (v, λ) ∈ Y_v, or an invalid id when λ ∉ Λ_out(G_M, v).
  [[nodiscard]] NodeId y_node(NodeId v, Wavelength lambda) const;

  /// |X_v| and |Y_v| (for Observation checks).
  [[nodiscard]] std::uint32_t x_size(NodeId v) const;
  [[nodiscard]] std::uint32_t y_size(NodeId v) const;

  /// All of X_v / Y_v as sorted (λ, aux-node) pairs (engine seed lists).
  [[nodiscard]] std::span<const std::pair<Wavelength, NodeId>> x_nodes(
      NodeId v) const;
  [[nodiscard]] std::span<const std::pair<Wavelength, NodeId>> y_nodes(
      NodeId v) const;

  [[nodiscard]] const AuxGraphStats& stats() const noexcept { return stats_; }

  /// Translates an auxiliary-graph link path (e.g. from extract_path on a
  /// Dijkstra tree over graph()) into the corresponding semilightpath.
  /// Conversion/tie links contribute no hops; transmission links become
  /// hops carrying their wavelength.
  [[nodiscard]] Semilightpath to_semilightpath(
      std::span<const LinkId> aux_path) const;

 private:
  AuxiliaryGraph() = default;

  /// Shared gadget + E_org construction; terminals added by the callers.
  static AuxiliaryGraph build_common(const WdmNetwork& net);

  NodeId add_aux_node(AuxNodeInfo info);
  LinkId add_aux_link(NodeId from, NodeId to, double weight, AuxLinkInfo info);

  /// Sorted (λ, aux-node) pairs; lookup by binary search so that build cost
  /// never depends on the universe size k (essential for Theorem 4's
  /// independence-of-k claim).
  using LambdaIndex = std::vector<std::pair<Wavelength, NodeId>>;
  [[nodiscard]] static NodeId lookup(const LambdaIndex& index,
                                     Wavelength lambda);

  Digraph graph_;
  std::vector<AuxNodeInfo> node_info_;
  std::vector<AuxLinkInfo> link_info_;
  std::vector<LambdaIndex> x_index_;  ///< per physical node
  std::vector<LambdaIndex> y_index_;  ///< per physical node
  bool all_pairs_ = false;
  NodeId single_source_terminal_;
  NodeId single_sink_terminal_;
  std::vector<NodeId> source_terminals_;  ///< all-pairs v'
  std::vector<NodeId> sink_terminals_;    ///< all-pairs v''
  AuxGraphStats stats_;
};

}  // namespace lumen
