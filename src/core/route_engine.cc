#include "core/route_engine.h"

#include <algorithm>
#include <array>
#include <atomic>

#include "core/aux_graph.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace lumen {

namespace {

/// Engine telemetry, separate from the per-request-rebuild routers'
/// lumen.route.* family so dashboards can compare the two paths.
struct EngineInstruments {
  obs::Counter& requests =
      obs::Registry::global().counter("lumen.route.engine.requests");
  obs::Counter& found =
      obs::Registry::global().counter("lumen.route.engine.found");
  obs::Counter& not_found =
      obs::Registry::global().counter("lumen.route.engine.not_found");
  obs::Counter& core_builds =
      obs::Registry::global().counter("lumen.route.engine.core_builds");
  obs::Counter& weight_patches =
      obs::Registry::global().counter("lumen.route.engine.weight_patches");
  obs::LatencyHistogram& latency =
      obs::Registry::global().histogram("lumen.route.engine.latency_ns");
  // Search-effort family shared by every engine search path (and the
  // standalone A*), so lumen_top / the Prometheus endpoint can watch the
  // pruning win live: pruned / (pruned + relax-attempts) is the fraction
  // of frontier work goal direction removed.
  obs::Counter& search_pops =
      obs::Registry::global().counter("lumen.core.search.pops");
  obs::Counter& search_settled =
      obs::Registry::global().counter("lumen.core.search.settled");
  obs::Counter& search_pruned =
      obs::Registry::global().counter("lumen.core.search.pruned");
  // Hierarchy family: build size, query effort, and the customization
  // work the residual churn actually costs (recustomized_arcs per
  // customize_runs is the touched-cone size the sublinearity tests gate).
  obs::Counter& hierarchy_shortcuts =
      obs::Registry::global().counter("lumen.core.hierarchy.shortcuts");
  obs::Counter& hierarchy_queries =
      obs::Registry::global().counter("lumen.core.hierarchy.queries");
  obs::Counter& hierarchy_fallbacks =
      obs::Registry::global().counter("lumen.core.hierarchy.fallbacks");
  obs::Counter& hierarchy_upward_pops =
      obs::Registry::global().counter("lumen.core.hierarchy.upward_pops");
  obs::Counter& hierarchy_customize_runs =
      obs::Registry::global().counter("lumen.core.hierarchy.customize_runs");
  obs::Counter& hierarchy_recustomized_arcs = obs::Registry::global().counter(
      "lumen.core.hierarchy.recustomized_arcs");
  obs::LatencyHistogram& hierarchy_customize =
      obs::Registry::global().histogram("lumen.core.hierarchy.customize_ns");
  // Batched-sweep family: one `run` per many_to_all/one_to_all invocation
  // (lanes counts the sources it carried, so lanes/runs is the achieved
  // packing), arcs_scanned the downward arc·lane relaxations, fallbacks
  // the bulk_costs source rows served by the flat Dijkstra instead (no or
  // stale hierarchy), ns the wall time inside the sweep kernels.
  obs::Counter& sweep_runs =
      obs::Registry::global().counter("lumen.core.sweep.runs");
  obs::Counter& sweep_lanes =
      obs::Registry::global().counter("lumen.core.sweep.lanes");
  obs::Counter& sweep_arcs_scanned =
      obs::Registry::global().counter("lumen.core.sweep.arcs_scanned");
  obs::Counter& sweep_fallbacks =
      obs::Registry::global().counter("lumen.core.sweep.fallbacks");
  obs::Counter& sweep_ns =
      obs::Registry::global().counter("lumen.core.sweep.ns");
  // Per-stage search split: labeled children keyed stage=hierarchy /
  // astar / dijkstra / lightpath.  The tag sets are interned once here,
  // so the per-query cost is a lock-free family probe.
  obs::LabeledFamily<obs::Counter>& stage_queries =
      obs::Registry::global().labeled_counter(
          "lumen.route.engine.stage_queries");
  obs::LabeledFamily<obs::Counter>& stage_pops =
      obs::Registry::global().labeled_counter("lumen.route.engine.stage_pops");
  const obs::TagSet hierarchy_stage = obs::TagSet{}.stage("hierarchy");
  const obs::TagSet astar_stage = obs::TagSet{}.stage("astar");
  const obs::TagSet dijkstra_stage = obs::TagSet{}.stage("dijkstra");
  const obs::TagSet lightpath_stage = obs::TagSet{}.stage("lightpath");
  const obs::TagSet sweep_stage = obs::TagSet{}.stage("sweep");

  static EngineInstruments& get() {
    static EngineInstruments instruments;
    return instruments;
  }

  void record_search(const CsrRunStats& run) {
    search_pops.add(run.pops);
    search_settled.add(run.settled);
    search_pruned.add(run.pruned);
  }

  /// One search executed under `stage`, with its frontier-pop effort.
  void record_stage(const obs::TagSet& stage, const CsrRunStats& run) {
    stage_queries.at(stage).add();
    stage_pops.at(stage).add(run.pops);
  }

  /// One sweep kernel invocation carrying `lanes` sources.
  void record_sweep(std::uint32_t lanes,
                    const ContractionHierarchy::SweepStats& sweep,
                    double seconds) {
    sweep_runs.add();
    sweep_lanes.add(lanes);
    sweep_arcs_scanned.add(sweep.arcs_scanned);
    sweep_ns.add(static_cast<std::uint64_t>(seconds * 1e9));
    stage_queries.at(sweep_stage).add();
    stage_pops.at(sweep_stage).add(sweep.upward_pops);
  }
};

/// Unique per-engine identity for scratch-resident potential caches; never
/// zero (zero marks an empty cache slot).
std::uint64_t next_potential_token() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

RouteEngine::RouteEngine(const WdmNetwork& net, const Options& options)
    : n_(net.num_nodes()),
      k_(net.num_wavelengths()),
      potential_token_(next_potential_token()) {
  Stopwatch timer;
  obs::TraceSpan build_span("route.engine.build");

  // --- semilightpath core: flatten G' into a CSR arena -------------------
  const AuxiliaryGraph aux = AuxiliaryGraph::build_core(net);
  core_ = std::make_unique<CsrDigraph>(aux.graph());

  sources_of_.resize(n_);
  sinks_of_.resize(n_);
  for (std::uint32_t vi = 0; vi < n_; ++vi) {
    const NodeId v{vi};
    for (const auto& [lambda, y] : aux.y_nodes(v)) sources_of_[vi].push_back(y);
    for (const auto& [lambda, x] : aux.x_nodes(v)) sinks_of_[vi].push_back(x);
  }
  core_phys_.resize(core_->num_nodes());
  for (std::uint32_t a = 0; a < core_->num_nodes(); ++a)
    core_phys_[a] = aux.node_info(NodeId{a}).node.value();

  // --- goal direction: base-weight lower-bound machinery ------------------
  // The physical topology with each link at its *base* cheapest-wavelength
  // cost.  Every semilightpath suffix pays at least this per physical link
  // crossed (conversions cost >= 0), and residual patches only raise
  // weights, so distances on this snapshot lower-bound every future
  // residual query — the zero-invalidation invariant.
  {
    Stopwatch landmark_timer;
    Digraph base_min(n_);
    for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
      const LinkId e{ei};
      base_min.add_link(net.tail(e), net.head(e), net.min_link_cost(e));
    }
    rev_base_ = std::make_unique<CsrDigraph>(CsrDigraph::reversed(base_min));
    if (options.build_hierarchy) {
      // Hierarchy-backed engines also contract the (much smaller) base
      // topology both ways: landmark selection then runs off one-to-all
      // sweeps instead of 2·count flat Dijkstras, and rev_base_ch_ keeps
      // warming per-target reverse potentials for the engine's lifetime.
      // Sweep distances are bit-identical to the flat search, so the
      // tables (and every potential built from them) are unchanged.
      const CsrDigraph fwd_base(base_min);
      const ContractionHierarchy fwd_base_ch(fwd_base, {});
      rev_base_ch_ = std::make_unique<ContractionHierarchy>(
          *rev_base_, ContractionHierarchy::Options{});
      landmarks_ = select_landmarks(base_min, options.num_landmarks,
                                    options.landmark_seed, fwd_base_ch,
                                    *rev_base_ch_);
    } else {
      landmarks_ = select_landmarks(base_min, options.num_landmarks,
                                    options.landmark_seed);
    }
    stats_.landmarks = landmarks_.num_landmarks;
    stats_.landmark_seconds = landmark_timer.seconds();
  }

  // --- lightpath cache: one physical CSR, one weight row per λ -----------
  phys_ = std::make_unique<CsrDigraph>(net.topology());
  const std::vector<std::uint32_t> phys_slot_of = phys_->slots_by_original();
  const std::uint32_t m = phys_->num_links();
  lightpath_weights_.assign(static_cast<std::size_t>(k_) * m, kInfiniteCost);
  for (std::uint32_t ei = 0; ei < m; ++ei) {
    const LinkId e{ei};
    for (const auto& lw : net.available(e)) {
      lightpath_weights_[static_cast<std::size_t>(lw.lambda.value()) * m +
                         phys_slot_of[ei]] = lw.cost;
    }
  }

  // --- slot metadata + per-link patch tables ------------------------------
  slot_info_.resize(core_->num_links());
  trans_slots_.resize(m);
  for (std::uint32_t slot = 0; slot < core_->num_links(); ++slot) {
    const AuxLinkInfo& info = aux.link_info(core_->link(slot).original);
    if (info.kind == AuxLinkKind::kTransmission) {
      slot_info_[slot] = {info.physical_link, NodeId::invalid(), info.from,
                          info.to};
      const std::uint32_t ei = info.physical_link.value();
      trans_slots_[ei].push_back(
          {info.from, slot,
           static_cast<std::uint32_t>(
               static_cast<std::size_t>(info.from.value()) * m +
               phys_slot_of[ei])});
      ++stats_.transmission_slots;
    } else {
      LUMEN_ASSERT(info.kind == AuxLinkKind::kConversion);
      slot_info_[slot] = {LinkId::invalid(), info.node, info.from, info.to};
    }
  }
  for (auto& table : trans_slots_) {
    std::sort(table.begin(), table.end(),
              [](const TransSlot& a, const TransSlot& b) {
                return a.lambda < b.lambda;
              });
  }
  base_core_weights_.resize(core_->num_links());
  for (std::uint32_t slot = 0; slot < core_->num_links(); ++slot)
    base_core_weights_[slot] = core_->link(slot).weight;

  // --- optional contraction hierarchy over the flattened core ------------
  hierarchy_auto_customize_ = options.hierarchy_auto_customize;
  if (options.build_hierarchy) {
    Stopwatch hierarchy_timer;
    ContractionHierarchy::Options ch;
    ch.degree_cap = options.hierarchy_degree_cap;
    ch.fill_cap = options.hierarchy_fill_cap;
    hierarchy_ = std::make_unique<ContractionHierarchy>(*core_, ch);
    stats_.hierarchy_seconds = hierarchy_timer.seconds();
    stats_.hierarchy_shortcuts = hierarchy_->num_shortcuts();
    stats_.hierarchy_core_nodes = hierarchy_->build_stats().core_nodes;
    EngineInstruments::get().hierarchy_shortcuts.add(
        stats_.hierarchy_shortcuts);
  }

  stats_.core_nodes = core_->num_nodes();
  stats_.core_links = core_->num_links();
  stats_.build_seconds = timer.seconds();
  EngineInstruments::get().core_builds.add();
}

std::uint32_t RouteEngine::customize_hierarchy() {
  if (hierarchy_ == nullptr || !hierarchy_->stale()) return 0;
  EngineInstruments& instruments = EngineInstruments::get();
  Stopwatch timer;
  const std::uint32_t touched = hierarchy_->customize();
  instruments.hierarchy_customize_runs.add();
  instruments.hierarchy_recustomized_arcs.add(touched);
  instruments.hierarchy_customize.record_seconds(timer.seconds());
  return touched;
}

RouteResult RouteEngine::trivial_self_route() const {
  RouteResult result;
  result.found = true;
  result.cost = 0.0;
  result.stats.aux_nodes = core_->num_nodes();
  result.stats.aux_links = core_->num_links();
  return result;
}

RouteResult RouteEngine::route_semilightpath(NodeId s, NodeId t) {
  return route_semilightpath(s, t, scratch_);
}

RouteResult RouteEngine::route_semilightpath(NodeId s, NodeId t,
                                             const QueryOptions& query) {
  // The scratch-less overload may mutate the engine, so a stale hierarchy
  // can self-heal here; the const overloads below must fall back instead.
  if (query.use_hierarchy && hierarchy_auto_customize_) {
    (void)customize_hierarchy();
  }
  return route_semilightpath(s, t, scratch_, query);
}

const double* RouteEngine::target_potential(NodeId t,
                                            SearchScratch& scratch) const {
  SearchScratch::TargetPotential& slot = scratch.target_potential();
  if (slot.owner != potential_token_ || slot.target != t.value()) {
    // Miss: one reverse one-to-all over the base-weight physical topology
    // — a PHAST sweep when the engine contracted the base graph (never
    // stale: base weights are frozen), a flat Dijkstra otherwise; both
    // produce the same bits.  Hits (repeated queries / batches to the
    // same target) cost nothing.
    slot.dist.resize(n_);
    const NodeId sources[1] = {t};
    if (rev_base_ch_ != nullptr) {
      ContractionHierarchy::SweepStats sweep;
      Stopwatch sweep_timer;
      rev_base_ch_->one_to_all(sources, scratch, slot.dist.data(), &sweep);
      EngineInstruments::get().record_sweep(1, sweep, sweep_timer.seconds());
    } else {
      scratch.begin(rev_base_->num_nodes());
      (void)dijkstra_csr_run(*rev_base_, sources, scratch);
      for (std::uint32_t v = 0; v < n_; ++v)
        slot.dist[v] = scratch.dist(NodeId{v});
    }
    slot.owner = potential_token_;
    slot.target = t.value();
  }
  return slot.dist.data();
}

RouteResult RouteEngine::route_semilightpath(NodeId s, NodeId t,
                                             SearchScratch& scratch,
                                             const QueryOptions& query) const {
  LUMEN_REQUIRE(s.value() < n_);
  LUMEN_REQUIRE(t.value() < n_);
  EngineInstruments& instruments = EngineInstruments::get();
  instruments.requests.add();
  if (s == t) {
    instruments.found.add();
    return trivial_self_route();
  }
  obs::TraceSpan query_span("route.engine.query");
  // Ambient causal span: an engine query launched inside a traced request
  // (SessionManager::open) becomes a child of that request's span tree.
  obs::CausalSpan causal_span("engine.semilightpath");
  causal_span.set_node(s.value());

  RouteResult result;
  result.stats.aux_nodes = core_->num_nodes();
  result.stats.aux_links = core_->num_links();
  Stopwatch timer;

  // The per-target table must be resolved before scratch.begin() below:
  // filling it on a miss runs its own search in the same scratch.
  const bool goal = query.goal_directed;
  const double* to_target = goal && query.use_target_potential
                                ? target_potential(t, scratch)
                                : nullptr;

  // π_t over core nodes = max of the active base-weight bounds for the
  // node's physical site.  Both bounds are 0 at t itself, so every sink
  // has potential 0 and the first settled sink is still the cheapest.
  const bool use_alt = goal && query.use_landmarks && !landmarks_.empty();
  const std::uint32_t tv = t.value();
  const auto potential = [&](std::uint32_t aux_node) {
    const std::uint32_t p = core_phys_[aux_node];
    double h = to_target != nullptr ? to_target[p] : 0.0;
    if (use_alt && h < kInfiniteCost) {
      const double alt = landmarks_.potential(p, tv);
      if (alt > h) h = alt;
    }
    return h;
  };

  // Hierarchy path: bidirectional upward query over the customized
  // shortcuts.  Requires a fresh customization — a stale (or absent)
  // hierarchy silently degrades to the flat search below.
  const bool hier =
      query.use_hierarchy && hierarchy_ != nullptr && !hierarchy_->stale();
  if (query.use_hierarchy && !hier) instruments.hierarchy_fallbacks.add();
  if (hier) {
    instruments.hierarchy_queries.add();
    CsrRunStats run_stats;
    std::vector<std::uint32_t> slots;
    const bool route_found =
        goal ? hierarchy_->query(sources_of_[s.value()], sinks_of_[t.value()],
                                 scratch, potential, slots, &run_stats)
             : hierarchy_->query(sources_of_[s.value()], sinks_of_[t.value()],
                                 scratch, NoPotential{}, slots, &run_stats);
    instruments.record_search(run_stats);
    instruments.record_stage(instruments.hierarchy_stage, run_stats);
    instruments.hierarchy_upward_pops.add(run_stats.pops);
    result.stats.search_pops = run_stats.pops;
    result.stats.search_settled = run_stats.settled;
    result.stats.search_relaxations = run_stats.relaxations;
    result.stats.search_pruned = run_stats.pruned;
    result.stats.search_seconds = timer.seconds();
#if LUMEN_OBS_ENABLED
    result.telemetry.emplace();
    result.telemetry->dijkstra_seconds = result.stats.search_seconds;
#endif
    if (!route_found) {
      result.found = false;
      result.cost = kInfiniteCost;
      instruments.not_found.add();
      instruments.latency.record_seconds(result.stats.total_seconds());
      return result;
    }
    result.found = true;
    // Re-accumulate the cost left-to-right over the unpacked slots: the
    // same addition order the flat Dijkstra uses along this path, so the
    // modes agree bit-for-bit instead of up to tree-sum rounding.
    double cost = 0.0;
    for (const std::uint32_t slot : slots) {
      cost += core_->weight(slot);
      const SlotInfo& info = slot_info_[slot];
      if (info.phys.valid()) {
        result.path.append(Hop{info.phys, info.from});
      } else if (info.from != info.to) {
        result.switches.push_back(
            SwitchSetting{info.node, info.from, info.to});
      }
    }
    result.cost = cost;
    instruments.found.add();
    instruments.latency.record_seconds(result.stats.total_seconds());
    return result;
  }

  // Virtual terminals: every y_s(λ) is a distance-0 seed (≡ the zero-weight
  // s' → Y_s ties), every x_t(λ) a sink; the first settled sink is the best
  // endpoint over all arrival wavelengths (≡ the zero-weight X_t → t''
  // fan-in), by Dijkstra's settle order.
  scratch.begin(core_->num_nodes());
  for (const NodeId x : sinks_of_[t.value()]) scratch.mark_sink(x);
  CsrRunStats run_stats;
  NodeId hit;
  if (goal) {
    hit = astar_csr_run(*core_, sources_of_[s.value()], scratch, potential,
                        &run_stats);
  } else {
    hit = dijkstra_csr_run(*core_, sources_of_[s.value()], scratch,
                           &run_stats);
  }
  instruments.record_search(run_stats);
  instruments.record_stage(
      goal ? instruments.astar_stage : instruments.dijkstra_stage, run_stats);
  result.stats.search_pops = run_stats.pops;
  result.stats.search_settled = run_stats.settled;
  result.stats.search_relaxations = run_stats.relaxations;
  result.stats.search_pruned = run_stats.pruned;
  result.stats.search_seconds = timer.seconds();

#if LUMEN_OBS_ENABLED
  result.telemetry.emplace();
  result.telemetry->dijkstra_seconds = result.stats.search_seconds;
#endif

  if (!hit.valid()) {
    result.found = false;
    result.cost = kInfiniteCost;
    instruments.not_found.add();
    instruments.latency.record_seconds(result.stats.total_seconds());
    return result;
  }

  result.found = true;
  result.cost = scratch.dist(hit);
  // Walk parent slots back to a seed, then translate forward: transmission
  // slots become hops; conversion slots with from != to become switches.
  std::vector<std::uint32_t> slots;
  for (NodeId v = hit;;) {
    const std::uint32_t slot = scratch.parent_slot(v);
    if (slot == CsrDigraph::kInvalidSlot) break;
    slots.push_back(slot);
    v = core_->tail(slot);
  }
  std::reverse(slots.begin(), slots.end());
  for (const std::uint32_t slot : slots) {
    const SlotInfo& info = slot_info_[slot];
    if (info.phys.valid()) {
      result.path.append(Hop{info.phys, info.from});
    } else if (info.from != info.to) {
      result.switches.push_back(SwitchSetting{info.node, info.from, info.to});
    }
  }

  instruments.found.add();
  instruments.latency.record_seconds(result.stats.total_seconds());
  return result;
}

RouteResult RouteEngine::route_lightpath(NodeId s, NodeId t) {
  return route_lightpath(s, t, scratch_);
}

RouteResult RouteEngine::route_lightpath(NodeId s, NodeId t,
                                         SearchScratch& scratch) const {
  LUMEN_REQUIRE(s.value() < n_);
  LUMEN_REQUIRE(t.value() < n_);
  EngineInstruments& instruments = EngineInstruments::get();
  instruments.requests.add();
  if (s == t) {
    instruments.found.add();
    RouteResult result;
    result.found = true;
    result.cost = 0.0;
    result.stats.aux_nodes = n_;
    result.stats.aux_links = phys_->num_links();
    return result;
  }
  obs::TraceSpan query_span("route.engine.query");
  obs::CausalSpan causal_span("engine.lightpath");
  causal_span.set_node(s.value());

  RouteResult best;
  best.found = false;
  best.cost = kInfiniteCost;
  best.stats.aux_nodes = n_;
  best.stats.aux_links = phys_->num_links();
  Stopwatch timer;

  const std::uint32_t m = phys_->num_links();
  const NodeId sources[1] = {s};
  for (std::uint32_t li = 0; li < k_; ++li) {
    const std::span<const double> row{
        lightpath_weights_.data() + static_cast<std::size_t>(li) * m, m};
    scratch.begin(phys_->num_nodes());
    scratch.mark_sink(t);
    CsrRunStats run_stats;
    const NodeId hit = dijkstra_csr_run(*phys_, sources, scratch, &run_stats,
                                        row);
    ++best.stats.wavelengths_searched;
    instruments.record_search(run_stats);
    instruments.record_stage(instruments.lightpath_stage, run_stats);
    best.stats.search_pops += run_stats.pops;
    best.stats.search_settled += run_stats.settled;
    best.stats.search_relaxations += run_stats.relaxations;
    best.stats.search_pruned += run_stats.pruned;
    if (!hit.valid() || scratch.dist(hit) >= best.cost) continue;

    best.found = true;
    best.cost = scratch.dist(hit);
    std::vector<std::uint32_t> slots;
    for (NodeId v = hit;;) {
      const std::uint32_t slot = scratch.parent_slot(v);
      if (slot == CsrDigraph::kInvalidSlot) break;
      slots.push_back(slot);
      v = phys_->tail(slot);
    }
    std::reverse(slots.begin(), slots.end());
    Semilightpath path;
    for (const std::uint32_t slot : slots)
      path.append(Hop{phys_->link(slot).original, Wavelength{li}});
    best.path = std::move(path);
  }
  best.switches.clear();  // lightpaths never convert
  best.stats.search_seconds = timer.seconds();
#if LUMEN_OBS_ENABLED
  best.telemetry.emplace();
  best.telemetry->dijkstra_seconds = best.stats.search_seconds;
#endif
  (best.found ? instruments.found : instruments.not_found).add();
  instruments.latency.record_seconds(best.stats.total_seconds());
  return best;
}

std::vector<RouteResult> RouteEngine::route_many(
    std::span<const std::pair<NodeId, NodeId>> pairs, unsigned threads,
    QueryKind kind, const QueryOptions& query) const {
  std::vector<RouteResult> results(pairs.size());
  const auto route_one = [&](std::size_t i, SearchScratch& scratch) {
    const auto& [s, t] = pairs[i];
    results[i] = kind == QueryKind::kSemilightpath
                     ? route_semilightpath(s, t, scratch, query)
                     : route_lightpath(s, t, scratch);
  };

  if (threads == 1 || pairs.size() <= 1) {
    SearchScratch scratch;
    for (std::size_t i = 0; i < pairs.size(); ++i) route_one(i, scratch);
    return results;
  }

  // One drainer per worker, each owning its scratch; a shared cursor
  // balances uneven query costs.  Results land in distinct slots, so no
  // synchronization beyond the pool's own join is needed.
  ThreadPool pool(threads);
  std::atomic<std::size_t> cursor{0};
  const std::size_t drainers =
      std::min<std::size_t>(pool.size(), pairs.size());
  for (std::size_t w = 0; w < drainers; ++w) {
    pool.submit([&] {
      SearchScratch scratch;
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= pairs.size()) return;
        route_one(i, scratch);
      }
    });
  }
  pool.wait();
  return results;
}

std::vector<std::vector<double>> RouteEngine::bulk_costs(
    std::span<const NodeId> sources, unsigned threads) {
  QueryOptions query;
  query.use_hierarchy = true;
  return bulk_costs(sources, threads, query);
}

std::vector<std::vector<double>> RouteEngine::bulk_costs(
    std::span<const NodeId> sources, unsigned threads,
    const QueryOptions& query) {
  if (query.use_hierarchy && hierarchy_auto_customize_) {
    (void)customize_hierarchy();
  }
  return static_cast<const RouteEngine&>(*this).bulk_costs(sources, threads,
                                                           query);
}

std::vector<std::vector<double>> RouteEngine::bulk_costs(
    std::span<const NodeId> sources, unsigned threads,
    const QueryOptions& query) const {
  EngineInstruments& instruments = EngineInstruments::get();
  std::vector<std::vector<double>> rows(sources.size());

  // Diagonal-0 rows up front; isolated sources (no usable wavelength at
  // all) are complete already and never occupy a sweep lane.
  std::vector<std::size_t> active;
  active.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const NodeId s = sources[i];
    LUMEN_REQUIRE(s.value() < n_);
    rows[i].assign(n_, kInfiniteCost);
    rows[i][s.value()] = 0.0;
    if (!sources_of_[s.value()].empty()) active.push_back(i);
  }
  if (active.empty()) return rows;

  const bool sweep =
      query.use_hierarchy && hierarchy_ != nullptr && !hierarchy_->stale();
  if (query.use_hierarchy && !sweep) {
    instruments.sweep_fallbacks.add(active.size());
  }

  // row[t] = min over the sinks X_t of the core distance — the same
  // reduction the point query's first-settled-sink rule computes, applied
  // to every target at once.  The diagonal stays 0 (trivial self-route).
  const auto reduce = [&](NodeId s, const auto& core_dist,
                          std::vector<double>& out) {
    for (std::uint32_t t = 0; t < n_; ++t) {
      if (t == s.value()) continue;
      double best = kInfiniteCost;
      for (const NodeId x : sinks_of_[t]) {
        const double d = core_dist(x.value());
        if (d < best) best = d;
      }
      out[t] = best;
    }
  };

  const std::uint32_t lane_width = ContractionHierarchy::kMaxLanes;
  // Lane-chunked work list: chunk c covers active[c*W, min((c+1)*W, ...)).
  const std::size_t num_chunks =
      sweep ? (active.size() + lane_width - 1) / lane_width : active.size();

  const auto run_chunk = [&](std::size_t c, SearchScratch& scratch,
                             std::vector<double>& lane_buf) {
    if (!sweep) {
      // Fallback: one flat full Dijkstra per source over the core.
      const std::size_t i = active[c];
      const NodeId s = sources[i];
      scratch.begin(core_->num_nodes());
      CsrRunStats run_stats;
      (void)dijkstra_csr_run(*core_, sources_of_[s.value()], scratch,
                             &run_stats);
      instruments.record_search(run_stats);
      instruments.record_stage(instruments.dijkstra_stage, run_stats);
      reduce(s, [&](std::uint32_t x) { return scratch.dist(NodeId{x}); },
             rows[i]);
      return;
    }
    const std::size_t begin = c * lane_width;
    const std::size_t end = std::min(begin + lane_width, active.size());
    const auto lanes = static_cast<std::uint32_t>(end - begin);
    const std::uint32_t nc = core_->num_nodes();
    lane_buf.resize(static_cast<std::size_t>(lanes) * nc);
    std::array<std::span<const NodeId>, ContractionHierarchy::kMaxLanes>
        seed_sets;
    std::array<double*, ContractionHierarchy::kMaxLanes> row_ptrs{};
    for (std::uint32_t l = 0; l < lanes; ++l) {
      const NodeId s = sources[active[begin + l]];
      seed_sets[l] = sources_of_[s.value()];
      row_ptrs[l] = lane_buf.data() + static_cast<std::size_t>(l) * nc;
    }
    ContractionHierarchy::SweepStats sweep_stats;
    Stopwatch sweep_timer;
    hierarchy_->many_to_all({seed_sets.data(), lanes}, scratch,
                            {row_ptrs.data(), lanes}, &sweep_stats);
    instruments.record_sweep(lanes, sweep_stats, sweep_timer.seconds());
    for (std::uint32_t l = 0; l < lanes; ++l) {
      const std::size_t i = active[begin + l];
      const double* core_row = row_ptrs[l];
      reduce(sources[i], [&](std::uint32_t x) { return core_row[x]; },
             rows[i]);
    }
  };

  if (threads == 1 || num_chunks <= 1) {
    SearchScratch scratch;
    std::vector<double> lane_buf;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      run_chunk(c, scratch, lane_buf);
    }
    return rows;
  }

  // route_many's drainer pattern: one scratch + lane buffer per worker,
  // a shared cursor balancing chunks of unequal sweep cost.
  ThreadPool pool(threads);
  std::atomic<std::size_t> cursor{0};
  const std::size_t drainers = std::min<std::size_t>(pool.size(), num_chunks);
  for (std::size_t w = 0; w < drainers; ++w) {
    pool.submit([&] {
      SearchScratch scratch;
      std::vector<double> lane_buf;
      for (;;) {
        const std::size_t c = cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        run_chunk(c, scratch, lane_buf);
      }
    });
  }
  pool.wait();
  return rows;
}

std::pair<std::uint32_t, std::uint32_t> RouteEngine::locate(
    LinkId e, Wavelength lambda) const {
  LUMEN_REQUIRE(e.value() < trans_slots_.size());
  const auto& table = trans_slots_[e.value()];
  const auto it = std::lower_bound(
      table.begin(), table.end(), lambda,
      [](const TransSlot& entry, Wavelength l) { return entry.lambda < l; });
  LUMEN_REQUIRE_MSG(it != table.end() && it->lambda == lambda,
                    "wavelength not in the base availability of this link; "
                    "structural changes require a new RouteEngine");
  return {it->core_slot, it->phys_weight_index};
}

RouteEngine::ReserveHandle RouteEngine::reserve(LinkId e, Wavelength lambda) {
  const auto [core_slot, weight_index] = locate(e, lambda);
  ReserveHandle handle{core_slot, weight_index, core_->link(core_slot).weight};
  core_->set_weight(core_slot, kInfiniteCost);
  lightpath_weights_[weight_index] = kInfiniteCost;
  if (hierarchy_ != nullptr) {
    hierarchy_->update_slot(core_slot, kInfiniteCost);
  }
  EngineInstruments::get().weight_patches.add();
  return handle;
}

void RouteEngine::release(const ReserveHandle& handle) {
  LUMEN_REQUIRE(handle.core_slot != CsrDigraph::kInvalidSlot);
  core_->set_weight(handle.core_slot, handle.cost);
  lightpath_weights_[handle.phys_weight_index] = handle.cost;
  if (hierarchy_ != nullptr) {
    hierarchy_->update_slot(handle.core_slot, handle.cost);
  }
  EngineInstruments::get().weight_patches.add();
}

void RouteEngine::set_weight(LinkId e, Wavelength lambda, double weight) {
  const auto [core_slot, weight_index] = locate(e, lambda);
  LUMEN_REQUIRE_MSG(weight >= base_core_weights_[core_slot],
                    "patched weight below the build-time base breaks the "
                    "goal-direction lower bounds; build a new RouteEngine");
  core_->set_weight(core_slot, weight);
  lightpath_weights_[weight_index] = weight;
  if (hierarchy_ != nullptr) {
    hierarchy_->update_slot(core_slot, weight);
  }
  EngineInstruments::get().weight_patches.add();
}

double RouteEngine::weight(LinkId e, Wavelength lambda) const {
  LUMEN_REQUIRE(e.value() < trans_slots_.size());
  const auto& table = trans_slots_[e.value()];
  const auto it = std::lower_bound(
      table.begin(), table.end(), lambda,
      [](const TransSlot& entry, Wavelength l) { return entry.lambda < l; });
  if (it == table.end() || it->lambda != lambda) return kInfiniteCost;
  return core_->link(it->core_slot).weight;
}

}  // namespace lumen
