#include "core/liang_shen.h"

#include "graph/binary_heap.h"
#include "graph/dijkstra.h"
#include "graph/pairing_heap.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/stopwatch.h"

namespace lumen {

namespace {

/// Ambient routing telemetry (no-ops under LUMEN_OBS_DISABLED).
struct RouteInstruments {
  obs::Counter& requests =
      obs::Registry::global().counter("lumen.route.requests");
  obs::Counter& found = obs::Registry::global().counter("lumen.route.found");
  obs::Counter& not_found =
      obs::Registry::global().counter("lumen.route.not_found");
  obs::LatencyHistogram& latency =
      obs::Registry::global().histogram("lumen.route.latency_ns");

  static RouteInstruments& get() {
    static RouteInstruments instruments;
    return instruments;
  }
};

ShortestPathTree run_dijkstra(const Digraph& g, NodeId source, NodeId target,
                              HeapKind heap) {
  switch (heap) {
    case HeapKind::kFibonacci:
      return dijkstra_with<FibHeap>(g, source, target);
    case HeapKind::kBinary:
      return dijkstra_with<BinaryHeap>(g, source, target);
    case HeapKind::kQuaternary:
      return dijkstra_with<QuaternaryHeap>(g, source, target);
    case HeapKind::kPairing:
      return dijkstra_with<PairingHeap>(g, source, target);
  }
  LUMEN_ASSERT(false);
}

RouteResult trivial_self_route() {
  RouteResult result;
  result.found = true;
  result.cost = 0.0;
  return result;
}

}  // namespace

RouteResult route_on_aux(const WdmNetwork& net, const AuxiliaryGraph& aux,
                         HeapKind heap) {
  RouteInstruments& instruments = RouteInstruments::get();
  instruments.requests.add();

  RouteResult result;
  result.stats.aux_nodes = aux.stats().total_nodes();
  result.stats.aux_links = aux.stats().total_links();
  result.stats.build_seconds = aux.stats().build_seconds;

  Stopwatch timer;
  const NodeId source = aux.source_terminal();
  const NodeId sink = aux.sink_terminal();
  obs::TraceSpan dijkstra_span("route.dijkstra");
  const ShortestPathTree tree = run_dijkstra(aux.graph(), source, sink, heap);
  dijkstra_span.close();
  result.stats.search_seconds = timer.seconds();
  result.stats.search_pops = tree.pops;
  result.stats.search_relaxations = tree.relaxations;

#if LUMEN_OBS_ENABLED
  result.telemetry.emplace();
  result.telemetry->aux_build_seconds = aux.stats().build_seconds;
  result.telemetry->dijkstra_seconds = result.stats.search_seconds;
#endif

  if (!tree.reached(sink)) {
    result.found = false;
    result.cost = kInfiniteCost;
    instruments.not_found.add();
    instruments.latency.record_seconds(result.stats.total_seconds());
    return result;
  }
  result.found = true;
  result.cost = tree.dist[sink.value()];
  obs::TraceSpan extract_span("route.path_extract");
  const auto aux_path = extract_path(aux.graph(), tree, sink);
  LUMEN_ASSERT(aux_path.has_value());
  result.path = aux.to_semilightpath(*aux_path);
  result.switches = result.path.switch_settings(net);
#if LUMEN_OBS_ENABLED
  result.telemetry->path_extract_seconds = extract_span.elapsed_seconds();
#endif
  extract_span.close();
  instruments.found.add();
  instruments.latency.record_seconds(result.stats.total_seconds());
  return result;
}

RouteResult route_semilightpath(const WdmNetwork& net, NodeId s, NodeId t,
                                HeapKind heap) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  if (s == t) return trivial_self_route();
  obs::TraceSpan route_span("route.semilightpath");
  obs::CausalSpan causal_span("route.semilightpath");
  causal_span.set_node(s.value());
  obs::TraceSpan build_span("route.aux_build");
  const AuxiliaryGraph aux = AuxiliaryGraph::build_single_pair(net, s, t);
  build_span.close();
  return route_on_aux(net, aux, heap);
}

RouteResult route_lightpath(const WdmNetwork& net, NodeId s, NodeId t) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  if (s == t) return trivial_self_route();

  RouteInstruments& instruments = RouteInstruments::get();
  instruments.requests.add();
  obs::TraceSpan route_span("route.lightpath");
  obs::CausalSpan causal_span("route.lightpath");
  causal_span.set_node(s.value());

  RouteResult best;
  best.found = false;
  best.cost = kInfiniteCost;
  // One physical topology is searched k times; report its size once and
  // count the wavelength iterations separately (previously these fields
  // accumulated to k·n / k·m, overstating the structure by a factor of k).
  best.stats.aux_nodes = net.num_nodes();
  best.stats.aux_links = net.num_links();
  Stopwatch timer;

  // One Dijkstra per wavelength on the λ-subnetwork.  The subnetwork
  // reuses the physical topology with weights w(e,λ) (+inf when λ ∉ Λ(e)),
  // so links outside Λ(e) are skipped by the search.  The Digraph is built
  // once; between wavelengths only the weights are rewritten in place.
  Digraph sub(net.num_nodes());
  sub.reserve_links(net.num_links());
  // sub's link ids coincide with physical link ids by construction order.
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    sub.add_link(net.tail(e), net.head(e), kInfiniteCost);
  }
  for (std::uint32_t li = 0; li < net.num_wavelengths(); ++li) {
    const Wavelength lambda{li};
    for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
      const LinkId e{ei};
      sub.set_weight(e, net.link_cost(e, lambda));
    }
    const ShortestPathTree tree = dijkstra(sub, s, t);
    ++best.stats.wavelengths_searched;
    best.stats.search_pops += tree.pops;
    best.stats.search_relaxations += tree.relaxations;
    if (!tree.reached(t) || tree.dist[t.value()] >= best.cost) continue;

    const auto links = extract_path(sub, tree, t);
    LUMEN_ASSERT(links.has_value());
    Semilightpath path;
    for (const LinkId e : *links) path.append(Hop{e, lambda});
    best.found = true;
    best.cost = tree.dist[t.value()];
    best.path = std::move(path);
  }
  best.switches.clear();  // lightpaths never convert
  best.stats.search_seconds = timer.seconds();
#if LUMEN_OBS_ENABLED
  best.telemetry.emplace();
  best.telemetry->dijkstra_seconds = best.stats.search_seconds;
#endif
  (best.found ? instruments.found : instruments.not_found).add();
  instruments.latency.record_seconds(best.stats.total_seconds());
  return best;
}

}  // namespace lumen
