// Conversion-budget-constrained semilightpath routing (extension).
//
// The paper motivates semilightpaths with physical limits — lightwave
// dispersion, limited transceivers — and the same physics bounds how many
// opto-electronic conversions a signal tolerates end-to-end.  This router
// finds the cheapest semilightpath using at most `max_conversions`
// wavelength switches: Dijkstra over the product of the auxiliary graph
// with the conversion budget (layers 0..C), which multiplies Theorem 1's
// cost by (C+1).
//
//   budget 0   == optimal pure lightpath
//   budget ≥ n·k == the unconstrained Theorem 1 optimum
//
// The full cost profile (optimal cost per budget) is also exposed; its
// marginal improvements quantify what each additional converter stage
// buys — an ablation DESIGN.md tracks.
#pragma once

#include <cstdint>
#include <vector>

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// Optimal semilightpath from s to t with at most `max_conversions`
/// wavelength switches.  Result contract matches route_semilightpath;
/// found == false also covers "reachable, but not within budget".
[[nodiscard]] RouteResult route_semilightpath_bounded(
    const WdmNetwork& net, NodeId s, NodeId t, std::uint32_t max_conversions);

/// profile[c] = optimal cost using at most c conversions, for
/// c = 0..max_conversions (kInfiniteCost where infeasible).  Computed in
/// one constrained Dijkstra, not max_conversions+1 separate runs.
[[nodiscard]] std::vector<double> conversion_cost_profile(
    const WdmNetwork& net, NodeId s, NodeId t, std::uint32_t max_conversions);

}  // namespace lumen
