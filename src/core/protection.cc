#include "core/protection.h"

#include <unordered_set>

#include "core/k_shortest.h"
#include "core/liang_shen.h"
#include "graph/dijkstra.h"  // kInfiniteCost

namespace lumen {

namespace {

/// Unordered endpoint key: a fiber cut takes out both directions of a
/// span, so protection must be span-disjoint, not merely directed-link-
/// disjoint.
[[nodiscard]] std::uint64_t span_key(const WdmNetwork& net, LinkId e) {
  std::uint32_t a = net.tail(e).value();
  std::uint32_t b = net.head(e).value();
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// The network with every link sharing a span with `working` removed.
/// `reduced_to_original[i]` maps the copy's link i back to the input net.
WdmNetwork without_working_spans(const WdmNetwork& net,
                                 const Semilightpath& working,
                                 std::vector<LinkId>& reduced_to_original) {
  std::unordered_set<std::uint64_t> blocked;
  for (const Hop& hop : working.hops()) blocked.insert(span_key(net, hop.link));

  WdmNetwork reduced(net.num_nodes(), net.num_wavelengths(),
                     net.conversion_ptr());
  reduced_to_original.clear();
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    if (blocked.contains(span_key(net, e))) continue;
    const LinkId copy = reduced.add_link(net.tail(e), net.head(e));
    for (const LinkWavelength& lw : net.available(e))
      reduced.set_wavelength(copy, lw.lambda, lw.cost);
    reduced_to_original.push_back(e);
  }
  return reduced;
}

/// Remaps a path routed on the reduced copy back onto original link ids.
Semilightpath remap(const Semilightpath& path,
                    const std::vector<LinkId>& reduced_to_original) {
  Semilightpath out;
  for (const Hop& hop : path.hops()) {
    LUMEN_ASSERT(hop.link.value() < reduced_to_original.size());
    out.append(Hop{reduced_to_original[hop.link.value()], hop.wavelength});
  }
  return out;
}

/// Completes a pair given a concrete working path; nullopt when the
/// remainder cannot carry a backup.
std::optional<ProtectedPair> complete_pair(const WdmNetwork& net, NodeId s,
                                           NodeId t,
                                           const Semilightpath& working,
                                           double working_cost) {
  std::vector<LinkId> reduced_to_original;
  const WdmNetwork reduced =
      without_working_spans(net, working, reduced_to_original);
  const RouteResult backup = route_semilightpath(reduced, s, t);
  if (!backup.found) return std::nullopt;
  ProtectedPair pair;
  pair.working = working;
  pair.working_cost = working_cost;
  pair.backup = remap(backup.path, reduced_to_original);
  pair.backup_cost = backup.cost;
  return pair;
}

}  // namespace

std::optional<ProtectedPair> route_protected_pair(const WdmNetwork& net,
                                                  NodeId s, NodeId t) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  LUMEN_REQUIRE_MSG(s != t, "protection needs distinct endpoints");
  const RouteResult working = route_semilightpath(net, s, t);
  if (!working.found) return std::nullopt;
  return complete_pair(net, s, t, working.path, working.cost);
}

std::optional<ProtectedPair> route_protected_pair_iterated(
    const WdmNetwork& net, NodeId s, NodeId t, std::uint32_t num_candidates) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  LUMEN_REQUIRE_MSG(s != t, "protection needs distinct endpoints");
  LUMEN_REQUIRE(num_candidates >= 1);

  std::optional<ProtectedPair> best;
  for (const RankedRoute& candidate :
       k_shortest_semilightpaths(net, s, t, num_candidates)) {
    const auto pair =
        complete_pair(net, s, t, candidate.path, candidate.cost);
    if (pair && (!best || pair->total_cost() < best->total_cost())) {
      best = pair;
    }
  }
  return best;
}

}  // namespace lumen
