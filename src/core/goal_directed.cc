#include "core/goal_directed.h"

#include <algorithm>

#include "core/aux_graph.h"
#include "graph/dijkstra.h"
#include "util/stopwatch.h"

namespace lumen {

namespace {

/// Lower bound on the cost of reaching t from every physical node:
/// reverse Dijkstra on the physical topology with each link weighted by
/// its cheapest available wavelength.
std::vector<double> physical_lower_bounds(const WdmNetwork& net, NodeId t) {
  // Build the reverse physical graph once.
  Digraph reversed(net.num_nodes());
  reversed.reserve_links(net.num_links());
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    reversed.add_link(net.head(e), net.tail(e), net.min_link_cost(e));
  }
  return dijkstra(reversed, t).dist;
}

}  // namespace

RouteResult route_semilightpath_astar(const WdmNetwork& net, NodeId s,
                                      NodeId t) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  RouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }

  Stopwatch build_clock;
  const AuxiliaryGraph aux = AuxiliaryGraph::build_single_pair(net, s, t);
  const std::vector<double> lb = physical_lower_bounds(net, t);
  result.stats.build_seconds = build_clock.seconds();
  result.stats.aux_nodes = aux.stats().total_nodes();
  result.stats.aux_links = aux.stats().total_links();

  const Digraph& g = aux.graph();
  const NodeId source = aux.source_terminal();
  const NodeId sink = aux.sink_terminal();

  // Potential of an auxiliary node = physical lower bound of its node;
  // terminals sit on s / t themselves.  Unreachable-in-reverse physical
  // nodes get +inf potential: they provably cannot reach t, so A* never
  // expands their auxiliary nodes at all.
  auto potential = [&](NodeId aux_node) {
    return lb[aux.node_info(aux_node).node.value()];
  };

  Stopwatch search_clock;
  // Per-query buffers are hoisted into a thread-local scratch (like
  // dijkstra_with's), so repeated queries reuse their capacity instead of
  // reallocating five arrays per call.
  struct Scratch {
    std::vector<double> dist;
    std::vector<LinkId> parent;
    std::vector<char> settled;
    std::vector<char> in_heap;
    std::vector<FibHeap::Handle> handle;
  };
  thread_local Scratch scratch;
  if (scratch.handle.size() < g.num_nodes())
    scratch.handle.resize(g.num_nodes());
  scratch.dist.assign(g.num_nodes(), kInfiniteCost);  // true g-costs
  scratch.parent.assign(g.num_nodes(), LinkId::invalid());
  scratch.settled.assign(g.num_nodes(), 0);
  scratch.in_heap.assign(g.num_nodes(), 0);
  std::vector<double>& dist = scratch.dist;
  std::vector<LinkId>& parent = scratch.parent;
  std::vector<char>& settled = scratch.settled;
  std::vector<char>& in_heap = scratch.in_heap;
  std::vector<FibHeap::Handle>& handle = scratch.handle;

  FibHeap heap;  // keyed by f = g + h
  const double h0 = potential(source);
  dist[source.value()] = 0.0;
  if (h0 < kInfiniteCost) {
    handle[source.value()] = heap.push(h0, source.value());
    in_heap[source.value()] = 1;
  }

  while (!heap.empty()) {
    const auto [f, u_raw] = heap.pop_min();
    (void)f;
    ++result.stats.search_pops;
    in_heap[u_raw] = 0;
    settled[u_raw] = 1;
    const NodeId u{u_raw};
    if (u == sink) break;
    const double du = dist[u_raw];
    for (const LinkId e : g.out_links(u)) {
      const double w = g.weight(e);
      if (w == kInfiniteCost) continue;
      const NodeId v = g.head(e);
      if (settled[v.value()]) continue;  // consistent h: safe to skip
      const double hv = potential(v);
      if (hv == kInfiniteCost) continue;  // cannot reach t physically
      const double candidate = du + w;
      if (candidate < dist[v.value()]) {
        dist[v.value()] = candidate;
        parent[v.value()] = e;
        ++result.stats.search_relaxations;
        const double fv = candidate + hv;
        if (in_heap[v.value()]) {
          heap.decrease_key(handle[v.value()], fv);
        } else {
          handle[v.value()] = heap.push(fv, v.value());
          in_heap[v.value()] = 1;
        }
      }
    }
  }
  result.stats.search_seconds = search_clock.seconds();

  if (dist[sink.value()] == kInfiniteCost) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = dist[sink.value()];

  std::vector<LinkId> aux_path;
  for (NodeId v = sink; v != source;) {
    const LinkId e = parent[v.value()];
    LUMEN_ASSERT(e.valid());
    aux_path.push_back(e);
    v = g.tail(e);
  }
  std::reverse(aux_path.begin(), aux_path.end());
  result.path = aux.to_semilightpath(aux_path);
  result.switches = result.path.switch_settings(net);
  return result;
}

}  // namespace lumen
