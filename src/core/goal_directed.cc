#include "core/goal_directed.h"

#include <algorithm>

#include "core/aux_graph.h"
#include "graph/dijkstra.h"
#include "obs/registry.h"
#include "util/stopwatch.h"

namespace lumen {

namespace {

/// Same lumen.core.search.* family the RouteEngine emits, so dashboards
/// see one coherent search-effort stream across every goal-directed path.
struct SearchInstruments {
  obs::Counter& pops =
      obs::Registry::global().counter("lumen.core.search.pops");
  obs::Counter& settled =
      obs::Registry::global().counter("lumen.core.search.settled");
  obs::Counter& pruned =
      obs::Registry::global().counter("lumen.core.search.pruned");

  static SearchInstruments& get() {
    static SearchInstruments instruments;
    return instruments;
  }
};

}  // namespace

const double* AstarPotentialCache::bounds_for(const WdmNetwork& net, NodeId t) {
  if (rev_phys_ == nullptr || owner_ != &net) {
    // (Re)build the reversed cheapest-wavelength snapshot.  CsrDigraph::
    // reversed packs in-links per node, so a forward-built Digraph with
    // each physical link at its min cost is all we need.
    Digraph base(net.num_nodes());
    base.reserve_links(net.num_links());
    for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
      const LinkId e{ei};
      base.add_link(net.tail(e), net.head(e), net.min_link_cost(e));
    }
    rev_phys_ = std::make_unique<CsrDigraph>(CsrDigraph::reversed(base));
    owner_ = &net;
    target_ = kNoTarget;
  }
  if (target_ != t.value()) {
    scratch_.begin(rev_phys_->num_nodes());
    const NodeId sources[1] = {t};
    (void)dijkstra_csr_run(*rev_phys_, sources, scratch_);
    dist_.resize(net.num_nodes());
    for (std::uint32_t v = 0; v < net.num_nodes(); ++v)
      dist_[v] = scratch_.dist(NodeId{v});
    target_ = t.value();
  }
  return dist_.data();
}

RouteResult route_semilightpath_astar(const WdmNetwork& net, NodeId s,
                                      NodeId t) {
  AstarPotentialCache cache;
  return route_semilightpath_astar(net, s, t, cache);
}

RouteResult route_semilightpath_astar(const WdmNetwork& net, NodeId s, NodeId t,
                                      AstarPotentialCache& cache) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  RouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }

  Stopwatch build_clock;
  const AuxiliaryGraph aux = AuxiliaryGraph::build_single_pair(net, s, t);
  const double* lb = cache.bounds_for(net, t);
  result.stats.build_seconds = build_clock.seconds();
  result.stats.aux_nodes = aux.stats().total_nodes();
  result.stats.aux_links = aux.stats().total_links();

  const Digraph& g = aux.graph();
  const NodeId source = aux.source_terminal();
  const NodeId sink = aux.sink_terminal();

  // Potential of an auxiliary node = physical lower bound of its node;
  // terminals sit on s / t themselves.  Unreachable-in-reverse physical
  // nodes get +inf potential: they provably cannot reach t, so A* never
  // expands their auxiliary nodes at all.
  auto potential = [&](NodeId aux_node) {
    return lb[aux.node_info(aux_node).node.value()];
  };

  Stopwatch search_clock;
  // Per-query buffers are hoisted into a thread-local scratch (like
  // dijkstra_with's), so repeated queries reuse their capacity instead of
  // reallocating five arrays per call.
  struct Scratch {
    std::vector<double> dist;
    std::vector<LinkId> parent;
    std::vector<char> settled;
    std::vector<char> in_heap;
    std::vector<FibHeap::Handle> handle;
  };
  thread_local Scratch scratch;
  if (scratch.handle.size() < g.num_nodes())
    scratch.handle.resize(g.num_nodes());
  scratch.dist.assign(g.num_nodes(), kInfiniteCost);  // true g-costs
  scratch.parent.assign(g.num_nodes(), LinkId::invalid());
  scratch.settled.assign(g.num_nodes(), 0);
  scratch.in_heap.assign(g.num_nodes(), 0);
  std::vector<double>& dist = scratch.dist;
  std::vector<LinkId>& parent = scratch.parent;
  std::vector<char>& settled = scratch.settled;
  std::vector<char>& in_heap = scratch.in_heap;
  std::vector<FibHeap::Handle>& handle = scratch.handle;

  FibHeap heap;  // keyed by f = g + h
  const double h0 = potential(source);
  dist[source.value()] = 0.0;
  if (h0 < kInfiniteCost) {
    handle[source.value()] = heap.push(h0, source.value());
    in_heap[source.value()] = 1;
  } else {
    ++result.stats.search_pruned;
  }

  while (!heap.empty()) {
    const auto [f, u_raw] = heap.pop_min();
    (void)f;
    ++result.stats.search_pops;
    ++result.stats.search_settled;
    in_heap[u_raw] = 0;
    settled[u_raw] = 1;
    const NodeId u{u_raw};
    if (u == sink) break;
    const double du = dist[u_raw];
    for (const LinkId e : g.out_links(u)) {
      const double w = g.weight(e);
      if (w == kInfiniteCost) continue;
      const NodeId v = g.head(e);
      if (settled[v.value()]) continue;  // consistent h: safe to skip
      const double candidate = du + w;
      if (candidate >= dist[v.value()]) continue;
      const double hv = potential(v);
      if (hv == kInfiniteCost) {  // cannot reach t physically
        ++result.stats.search_pruned;
        continue;
      }
      dist[v.value()] = candidate;
      parent[v.value()] = e;
      ++result.stats.search_relaxations;
      const double fv = candidate + hv;
      if (in_heap[v.value()]) {
        heap.decrease_key(handle[v.value()], fv);
      } else {
        handle[v.value()] = heap.push(fv, v.value());
        in_heap[v.value()] = 1;
      }
    }
  }
  result.stats.search_seconds = search_clock.seconds();
  SearchInstruments& instruments = SearchInstruments::get();
  instruments.pops.add(result.stats.search_pops);
  instruments.settled.add(result.stats.search_settled);
  instruments.pruned.add(result.stats.search_pruned);

  if (dist[sink.value()] == kInfiniteCost) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = dist[sink.value()];

  std::vector<LinkId> aux_path;
  for (NodeId v = sink; v != source;) {
    const LinkId e = parent[v.value()];
    LUMEN_ASSERT(e.valid());
    aux_path.push_back(e);
    v = g.tail(e);
  }
  std::reverse(aux_path.begin(), aux_path.end());
  result.path = aux.to_semilightpath(aux_path);
  result.switches = result.path.switch_settings(net);
  return result;
}

}  // namespace lumen
