#include "core/state_dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/stopwatch.h"

namespace lumen {

namespace {

/// States are encoded as v * k + λ; the extra state n*k is the start
/// (standing at s with no incoming wavelength).
using State = std::uint64_t;

struct Arrival {
  State prev = ~State{0};
  LinkId link;  // physical link taken to enter this state
};

}  // namespace

RouteResult state_dijkstra_route(const WdmNetwork& net, NodeId s, NodeId t) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  RouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }

  Stopwatch timer;
  const std::uint64_t n = net.num_nodes();
  const std::uint64_t k = net.num_wavelengths();
  const State start = n * k;
  const std::uint64_t num_states = n * k + 1;
  result.stats.aux_nodes = num_states;

  std::vector<double> dist(num_states, kInfiniteCost);
  std::vector<Arrival> arrival(num_states);
  std::vector<char> settled(num_states, 0);

  using Entry = std::pair<double, State>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[start] = 0.0;
  heap.push({0.0, start});

  auto relax = [&](State to, double candidate, State from, LinkId via) {
    if (candidate < dist[to]) {
      dist[to] = candidate;
      arrival[to] = Arrival{from, via};
      heap.push({candidate, to});
      ++result.stats.search_relaxations;
    }
  };

  double best_cost = kInfiniteCost;
  State best_state = ~State{0};

  while (!heap.empty()) {
    const auto [d, state] = heap.top();
    heap.pop();
    if (settled[state] || d > dist[state]) continue;  // stale entry
    settled[state] = 1;
    ++result.stats.search_pops;
    if (d >= best_cost) break;  // nothing cheaper can still be found

    NodeId v;
    Wavelength in_lambda;
    if (state == start) {
      v = s;
      in_lambda = Wavelength::invalid();
    } else {
      v = NodeId{static_cast<std::uint32_t>(state / k)};
      in_lambda = Wavelength{static_cast<std::uint32_t>(state % k)};
      if (v == t && d < best_cost) {
        best_cost = d;
        best_state = state;
        break;  // Dijkstra: first settled target state is optimal
      }
    }

    for (const LinkId e : net.out_links(v)) {
      for (const auto& lw : net.available(e)) {
        double step = lw.cost;
        if (state != start) {
          const double conv = net.conversion_cost(v, in_lambda, lw.lambda);
          if (conv == kInfiniteCost) continue;
          step += conv;
        }
        const State next =
            static_cast<std::uint64_t>(net.head(e).value()) * k +
            lw.lambda.value();
        relax(next, d + step, state, e);
      }
    }
  }

  result.stats.search_seconds = timer.seconds();
  if (best_state == ~State{0}) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }

  result.found = true;
  result.cost = best_cost;
  std::vector<Hop> hops;
  for (State cur = best_state; cur != start; cur = arrival[cur].prev) {
    hops.push_back(Hop{arrival[cur].link,
                       Wavelength{static_cast<std::uint32_t>(cur % k)}});
  }
  std::reverse(hops.begin(), hops.end());
  result.path = Semilightpath(std::move(hops));
  result.switches = result.path.switch_settings(net);
  return result;
}

}  // namespace lumen
