#include "core/cfz.h"

#include <unordered_map>

#include "graph/dijkstra.h"
#include "util/stopwatch.h"

namespace lumen {

namespace {

/// Hash key for an ordered node pair.
[[nodiscard]] std::uint64_t pair_key(NodeId u, NodeId v) noexcept {
  return (static_cast<std::uint64_t>(u.value()) << 32) | v.value();
}

struct WavelengthGraph {
  Digraph graph;
  NodeId source_terminal;
  NodeId sink_terminal;
  /// wg link id -> physical link id (invalid for column/terminal links)
  std::vector<LinkId> physical;
  CfzGraphStats stats;
  std::uint32_t n = 0;  // to decode (λ,v) = id / n, id % n
};

/// Node id of (λ, v) in WG.
[[nodiscard]] NodeId wg_node(std::uint32_t lambda, std::uint32_t v,
                             std::uint32_t n) noexcept {
  return NodeId{lambda * n + v};
}

WavelengthGraph build_wavelength_graph(const WdmNetwork& net, NodeId s,
                                       NodeId t) {
  Stopwatch timer;
  const std::uint32_t n = net.num_nodes();
  const std::uint32_t k = net.num_wavelengths();
  WavelengthGraph wg;
  wg.n = n;
  wg.graph = Digraph(n * k);
  wg.stats.nodes = static_cast<std::uint64_t>(n) * k;

  // CFZ do not exploit the physical adjacency lists: the row links are
  // produced by scanning all ordered node pairs per wavelength.  We keep
  // that faithful n² scan and use an O(1)-expected hash lookup per pair
  // (the adjacency-list correction of Liang & Shen; a matrix would already
  // cost O(n²) to initialize, which is the same Θ as the scan itself).
  std::unordered_map<std::uint64_t, std::vector<LinkId>> by_pair;
  by_pair.reserve(net.num_links() * 2);
  for (std::uint32_t ei = 0; ei < net.num_links(); ++ei) {
    const LinkId e{ei};
    by_pair[pair_key(net.tail(e), net.head(e))].push_back(e);
  }

  auto add_wg_link = [&wg](NodeId a, NodeId b, double w, LinkId phys) {
    wg.graph.add_link(a, b, w);
    wg.physical.push_back(phys);
  };

  for (std::uint32_t lambda = 0; lambda < k; ++lambda) {
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = 0; v < n; ++v) {
        ++wg.stats.pair_scans;
        const auto it = by_pair.find(pair_key(NodeId{u}, NodeId{v}));
        if (it == by_pair.end()) continue;
        for (const LinkId e : it->second) {
          const double w = net.link_cost(e, Wavelength{lambda});
          if (w == kInfiniteCost) continue;
          add_wg_link(wg_node(lambda, u, n), wg_node(lambda, v, n), w, e);
          ++wg.stats.row_links;
        }
      }
    }
  }

  // Column (conversion) links: the full k×k fan at every node.
  const ConversionModel& conv = net.conversion();
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t p = 0; p < k; ++p) {
      for (std::uint32_t q = 0; q < k; ++q) {
        if (p == q) continue;
        const double c = conv.cost(NodeId{v}, Wavelength{p}, Wavelength{q});
        if (c == kInfiniteCost) continue;
        add_wg_link(wg_node(p, v, n), wg_node(q, v, n), c, LinkId::invalid());
        ++wg.stats.column_links;
      }
    }
  }

  // Terminals.
  wg.source_terminal = wg.graph.add_node();
  wg.sink_terminal = wg.graph.add_node();
  wg.stats.nodes += 2;
  for (std::uint32_t lambda = 0; lambda < k; ++lambda) {
    add_wg_link(wg.source_terminal, wg_node(lambda, s.value(), n), 0.0,
                LinkId::invalid());
    add_wg_link(wg_node(lambda, t.value(), n), wg.sink_terminal, 0.0,
                LinkId::invalid());
  }
  wg.stats.build_seconds = timer.seconds();
  return wg;
}

}  // namespace

RouteResult cfz_route(const WdmNetwork& net, NodeId s, NodeId t) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  RouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }

  const WavelengthGraph wg = build_wavelength_graph(net, s, t);
  result.stats.aux_nodes = wg.stats.nodes;
  result.stats.aux_links = wg.graph.num_links();
  result.stats.build_seconds = wg.stats.build_seconds;

  Stopwatch timer;
  const ShortestPathTree tree =
      dijkstra(wg.graph, wg.source_terminal, wg.sink_terminal);
  result.stats.search_seconds = timer.seconds();
  result.stats.search_pops = tree.pops;
  result.stats.search_relaxations = tree.relaxations;

  if (!tree.reached(wg.sink_terminal)) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = tree.dist[wg.sink_terminal.value()];

  const auto wg_path = extract_path(wg.graph, tree, wg.sink_terminal);
  LUMEN_ASSERT(wg_path.has_value());
  Semilightpath path;
  for (const LinkId wl : *wg_path) {
    const LinkId phys = wg.physical[wl.value()];
    if (!phys.valid()) continue;  // conversion or terminal link
    // Row link at wavelength λ = tail id / n.
    const Wavelength lambda{wg.graph.tail(wl).value() / wg.n};
    path.append(Hop{phys, lambda});
  }
  result.path = std::move(path);
  result.switches = result.path.switch_settings(net);
  return result;
}

CfzGraphStats cfz_graph_stats(const WdmNetwork& net) {
  if (net.num_nodes() < 2) return {};
  const WavelengthGraph wg =
      build_wavelength_graph(net, NodeId{0}, NodeId{1});
  return wg.stats;
}

}  // namespace lumen
