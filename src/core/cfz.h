// Baseline: the Chlamtac–Faragó–Zhang wavelength-graph algorithm [4].
//
// CFZ build a *wavelength graph* WG on the full k×n grid: one node per
// (wavelength λ, network node v) whether or not λ is incident on v.
//   - Row links: (λ,u) -> (λ,v) with weight w(e,λ) for every physical link
//     e = (u,v) with λ ∈ Λ(e).
//   - Column links: (λ_p,v) -> (λ_q,v) with weight c_v(λ_p,λ_q) for every
//     allowed conversion.
// Liang & Shen point out that WG must be held in adjacency lists (an
// adjacency matrix alone costs O(k²n²) to initialize), and that even then
// the CFZ construction — which scans every ordered node pair per wavelength
// because it does not exploit the sparse physical adjacency — costs
// O(kn(k+n)) = O(k²n + kn²).  We reproduce that construction faithfully
// (an O(1)-expected link lookup inside an n² scan per wavelength) so the
// Section III-C comparison benchmark measures the real thing.
//
// Semantics note (documented divergence): WG column links can be chained —
// two conversions at one node back to back — which Equation (1) does not
// express (one conversion term per junction).  When every node's conversion
// costs satisfy the triangle inequality (all models in wdm/conversion.h
// except adversarial MatrixConversion instances), chaining is never
// strictly profitable and CFZ agrees with Liang–Shen; tests exploit this,
// and cfz_route documents the caveat for general matrices.
#pragma once

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// Finds the optimal semilightpath from s to t using the CFZ wavelength
/// graph.  Same result contract as route_semilightpath (see caveat above
/// for conversion models violating the triangle inequality).
[[nodiscard]] RouteResult cfz_route(const WdmNetwork& net, NodeId s, NodeId t);

/// Structural sizes of the CFZ wavelength graph for a given network,
/// without routing (bench instrumentation).
struct CfzGraphStats {
  std::uint64_t nodes = 0;            ///< k*n + 2 terminals
  std::uint64_t row_links = 0;        ///< transmission links
  std::uint64_t column_links = 0;     ///< conversion links
  std::uint64_t pair_scans = 0;       ///< ordered node pairs examined (kn²)
  double build_seconds = 0.0;
};
[[nodiscard]] CfzGraphStats cfz_graph_stats(const WdmNetwork& net);

}  // namespace lumen
