// All-pairs optimal semilightpaths (Corollary 1).
//
// Builds the auxiliary graph G_all once — G' plus per-node terminals v'
// (zero-weight fan-out to Y_v) and v'' (zero-weight fan-in from X_v) — and
// answers every (s, t) query from the shortest-path tree rooted at s'.
// Trees are computed lazily and cached, so q queries from q' distinct
// sources cost one construction plus q' Dijkstra runs:
// O(k²n + km + q'·(k²n + km + kn·log(kn))) total, matching the corollary
// when q' = n.
#pragma once

#include <optional>
#include <vector>

#include "core/aux_graph.h"
#include "core/route_types.h"
#include "graph/dijkstra.h"
#include "wdm/network.h"

namespace lumen {

/// Answers repeated optimal-semilightpath queries over one network.
/// The network must outlive the router and must not be mutated meanwhile.
class AllPairsRouter {
 public:
  explicit AllPairsRouter(const WdmNetwork& net);

  /// Cost of the optimal semilightpath s -> t (kInfiniteCost when none,
  /// 0 when s == t).
  [[nodiscard]] double cost(NodeId s, NodeId t);

  /// Full routing result (path + switch settings) for s -> t.
  [[nodiscard]] RouteResult route(NodeId s, NodeId t);

  /// The n×n matrix of optimal costs (row = source); forces all n trees.
  [[nodiscard]] std::vector<std::vector<double>> cost_matrix();

  /// Same matrix, but the not-yet-cached trees are computed concurrently
  /// on `threads` workers (0 = one per hardware thread).  G_all is shared
  /// read-only; every tree lands in its own cache slot, so the result is
  /// identical to the serial overload.
  [[nodiscard]] std::vector<std::vector<double>> cost_matrix(unsigned threads);

  /// Structural stats of G_all (Corollary 1 size checks).
  [[nodiscard]] const AuxGraphStats& aux_stats() const noexcept {
    return aux_.stats();
  }

  /// Number of shortest-path trees computed so far.
  [[nodiscard]] std::uint32_t trees_computed() const noexcept {
    return trees_computed_;
  }

 private:
  const ShortestPathTree& tree_for(NodeId s);

  const WdmNetwork* net_;
  AuxiliaryGraph aux_;
  std::vector<std::optional<ShortestPathTree>> trees_;  // per source node
  std::uint32_t trees_computed_ = 0;
};

}  // namespace lumen
