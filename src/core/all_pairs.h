// All-pairs optimal semilightpaths (Corollary 1).
//
// Builds the auxiliary graph G_all once — G' plus per-node terminals v'
// (zero-weight fan-out to Y_v) and v'' (zero-weight fan-in from X_v) — and
// answers every (s, t) query from the shortest-path tree rooted at s'.
// Trees are computed lazily and cached, so q queries from q' distinct
// sources cost one construction plus q' Dijkstra runs:
// O(k²n + km + q'·(k²n + km + kn·log(kn))) total, matching the corollary
// when q' = n.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/aux_graph.h"
#include "core/route_types.h"
#include "graph/dijkstra.h"
#include "wdm/network.h"

namespace lumen {

class RouteEngine;

/// Answers repeated optimal-semilightpath queries over one network.
/// The network must outlive the router and must not be mutated meanwhile.
class AllPairsRouter {
 public:
  explicit AllPairsRouter(const WdmNetwork& net);
  ~AllPairsRouter();

  /// Cost of the optimal semilightpath s -> t (kInfiniteCost when none,
  /// 0 when s == t).
  [[nodiscard]] double cost(NodeId s, NodeId t);

  /// Full routing result (path + switch settings) for s -> t.
  [[nodiscard]] RouteResult route(NodeId s, NodeId t);

  /// The n×n matrix of optimal costs (row = source); forces all n trees.
  [[nodiscard]] std::vector<std::vector<double>> cost_matrix();

  /// Same matrix, served by lane-packed PHAST sweeps: a hierarchy-backed
  /// RouteEngine (built lazily on first call, cached) partitions the
  /// sources across `threads` workers (0 = one per hardware thread), each
  /// sweeping up to ContractionHierarchy::kMaxLanes sources per one-to-all
  /// pass.  Sweep distances re-accumulate in the flat search's addition
  /// order, so the matrix matches the serial overload (which still builds
  /// per-source trees — route() needs them for path extraction); trees
  /// are neither built nor consumed here, so trees_computed() does not
  /// advance.  threads = 1 falls through to the serial overload.
  [[nodiscard]] std::vector<std::vector<double>> cost_matrix(unsigned threads);

  /// Structural stats of G_all (Corollary 1 size checks).
  [[nodiscard]] const AuxGraphStats& aux_stats() const noexcept {
    return aux_.stats();
  }

  /// Number of shortest-path trees computed so far.
  [[nodiscard]] std::uint32_t trees_computed() const noexcept {
    return trees_computed_;
  }

 private:
  const ShortestPathTree& tree_for(NodeId s);
  /// The sweep engine behind cost_matrix(threads), built on first use
  /// (no landmarks — bulk sweeps are not goal-directed — but with the
  /// contraction hierarchy the sweeps run on).
  RouteEngine& matrix_engine();

  const WdmNetwork* net_;
  AuxiliaryGraph aux_;
  std::vector<std::optional<ShortestPathTree>> trees_;  // per source node
  std::uint32_t trees_computed_ = 0;
  std::unique_ptr<RouteEngine> engine_;  // lazy; see matrix_engine()
};

}  // namespace lumen
