#include "core/constrained.h"

#include <algorithm>
#include <queue>

#include "core/aux_graph.h"
#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/stopwatch.h"

namespace lumen {

namespace {

/// Product-graph search state: (auxiliary node, conversions used so far).
struct Search {
  const AuxiliaryGraph& aux;
  std::uint32_t layers;  // max_conversions + 1
  std::vector<double> dist;
  std::vector<LinkId> parent_link;    // aux link taken into the state
  std::vector<std::uint32_t> parent;  // predecessor state index
  std::uint64_t pops = 0;
  std::uint64_t relaxations = 0;

  Search(const AuxiliaryGraph& aux_graph, std::uint32_t max_conversions)
      : aux(aux_graph),
        layers(max_conversions + 1),
        dist(static_cast<std::size_t>(aux_graph.graph().num_nodes()) * layers,
             kInfiniteCost),
        parent_link(dist.size(), LinkId::invalid()),
        parent(dist.size(), std::numeric_limits<std::uint32_t>::max()) {}

  [[nodiscard]] std::uint32_t state(NodeId aux_node,
                                    std::uint32_t used) const {
    return aux_node.value() * layers + used;
  }

  void run(NodeId source) {
    using Entry = std::pair<double, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    const std::uint32_t start = state(source, 0);
    dist[start] = 0.0;
    heap.push({0.0, start});
    const Digraph& g = aux.graph();

    while (!heap.empty()) {
      const auto [d, cur] = heap.top();
      heap.pop();
      if (d > dist[cur]) continue;  // stale
      ++pops;
      const NodeId aux_node{cur / layers};
      const std::uint32_t used = cur % layers;
      for (const LinkId e : g.out_links(aux_node)) {
        const double w = g.weight(e);
        if (w == kInfiniteCost) continue;
        const AuxLinkInfo& info = aux.link_info(e);
        std::uint32_t next_used = used;
        if (info.kind == AuxLinkKind::kConversion && info.from != info.to) {
          if (used + 1 >= layers) continue;  // budget exhausted
          next_used = used + 1;
        }
        const std::uint32_t next = state(g.head(e), next_used);
        if (d + w < dist[next]) {
          dist[next] = d + w;
          parent_link[next] = e;
          parent[next] = cur;
          ++relaxations;
          heap.push({d + w, next});
        }
      }
    }
  }

  /// Cheapest sink state with used <= budget; invalid when infeasible.
  [[nodiscard]] std::uint32_t best_sink_state(NodeId sink,
                                              std::uint32_t budget) const {
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t used = 0; used <= budget && used < layers; ++used) {
      const std::uint32_t s = state(sink, used);
      if (dist[s] == kInfiniteCost) continue;
      if (best == std::numeric_limits<std::uint32_t>::max() ||
          dist[s] < dist[best]) {
        best = s;
      }
    }
    return best;
  }
};

}  // namespace

RouteResult route_semilightpath_bounded(const WdmNetwork& net, NodeId s,
                                        NodeId t,
                                        std::uint32_t max_conversions) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  RouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }

  Stopwatch build_clock;
  const AuxiliaryGraph aux = AuxiliaryGraph::build_single_pair(net, s, t);
  result.stats.build_seconds = build_clock.seconds();
  result.stats.aux_nodes =
      aux.stats().total_nodes() * (max_conversions + 1ULL);
  result.stats.aux_links = aux.stats().total_links();

  Stopwatch search_clock;
  Search search(aux, max_conversions);
  search.run(aux.source_terminal());
  result.stats.search_seconds = search_clock.seconds();
  result.stats.search_pops = search.pops;
  result.stats.search_relaxations = search.relaxations;

  const std::uint32_t best =
      search.best_sink_state(aux.sink_terminal(), max_conversions);
  if (best == std::numeric_limits<std::uint32_t>::max()) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = search.dist[best];

  std::vector<LinkId> aux_path;
  for (std::uint32_t cur = best;
       search.parent[cur] != std::numeric_limits<std::uint32_t>::max();
       cur = search.parent[cur]) {
    aux_path.push_back(search.parent_link[cur]);
  }
  std::reverse(aux_path.begin(), aux_path.end());
  result.path = aux.to_semilightpath(aux_path);
  result.switches = result.path.switch_settings(net);
  LUMEN_ASSERT(result.path.num_conversions() <= max_conversions);
  return result;
}

std::vector<double> conversion_cost_profile(const WdmNetwork& net, NodeId s,
                                            NodeId t,
                                            std::uint32_t max_conversions) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  std::vector<double> profile(max_conversions + 1, kInfiniteCost);
  if (s == t) {
    std::fill(profile.begin(), profile.end(), 0.0);
    return profile;
  }
  const AuxiliaryGraph aux = AuxiliaryGraph::build_single_pair(net, s, t);
  Search search(aux, max_conversions);
  search.run(aux.source_terminal());
  const NodeId sink = aux.sink_terminal();
  for (std::uint32_t c = 0; c <= max_conversions; ++c) {
    const std::uint32_t best = search.best_sink_state(sink, c);
    if (best != std::numeric_limits<std::uint32_t>::max())
      profile[c] = search.dist[best];
  }
  return profile;
}

}  // namespace lumen
