// Exhaustive-search oracle for tiny networks.
//
// Enumerates every walk from s to t up to a hop limit, choosing every
// admissible wavelength on every link, and returns the cheapest per
// Equation (1).  Exponential — intended for n <= ~6, k <= ~4 in tests,
// where it provides a fully independent ground truth (it shares no graph
// machinery with the real routers).
#pragma once

#include <cstdint>

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// Optimal semilightpath from s to t among walks of at most `max_hops`
/// links.  Note a true optimum may revisit nodes (Fig. 5), so max_hops
/// should comfortably exceed n for exactness on adversarial instances.
[[nodiscard]] RouteResult brute_force_route(const WdmNetwork& net, NodeId s,
                                            NodeId t,
                                            std::uint32_t max_hops = 10);

}  // namespace lumen
