// Build-once route-many: a reusable flattened auxiliary-graph engine.
//
// route_semilightpath() pays the full G_{s,t} construction — O(k²n + km)
// node/link inserts on an allocation-per-adjacency-list Digraph — on every
// query, even though only the two terminal nodes depend on (s, t).  The
// engine hoists everything else out of the hot path:
//
//   * The wavelength-gadget core G' (G_M + conversion gadgets, NO
//     terminals) is built once per network and flattened into a
//     cache-friendly CSR arena (CsrDigraph).
//   * A query (s, t) uses *virtual terminals*: a multi-source Dijkstra is
//     seeded from every y_s(λ) at distance 0 (exactly the zero-weight
//     s' ties of G_{s,t}) and stops at the first settled x_t(λ) (which,
//     by settle order, realizes the zero-weight X_t → t'' fan-in).  A
//     query therefore mutates nothing and — after warm-up — allocates
//     only its result; the search state lives in a reusable
//     generation-stamped SearchScratch.
//   * Residual updates are in-place weight patches: reserving a
//     (link, λ) flips one transmission slot (and one per-wavelength
//     subnetwork slot) to +inf in O(log k0); releasing restores it in
//     O(1) via the ReserveHandle.  The structure never changes, so the
//     core stays valid for the network's whole lifetime.
//   * route_lightpath gets the same treatment: one CSR snapshot of the
//     physical topology shared by all wavelengths, with one weight row
//     per λ — k searches per query, zero construction.
//   * route_many() fans a batch of queries over a ThreadPool; the
//     flattened core is searched concurrently with per-thread scratch.
//   * Goal direction (QueryOptions{goal_directed}): single-pair queries
//     run multi-source A* instead of uniform Dijkstra, keyed by
//     f = g + π_t(v) where π_t combines (max) two base-weight lower
//     bounds — ALT landmark bounds precomputed at build time, and an
//     exact cheapest-wavelength reverse Dijkstra to t computed lazily
//     once per target and cached in the scratch.  Both are *base*-weight
//     distances, which is what makes them residual-safe with zero
//     invalidation: weight patches only ever raise a link's weight above
//     its base value (reserve/fail → +inf, release/repair → restore
//     base; set_weight enforces this), so the bounds stay admissible and
//     consistent for the engine's whole lifetime.  Pruning degrades
//     gracefully as load rises; correctness never does.
//
// Invalidation rules: weight-only residual changes (reserve/release of a
// wavelength that exists in the base network, span failure/repair) are
// O(1) patches.  Structural changes — adding links or nodes, making a
// wavelength available that was NOT in the base Λ(e), or swapping the
// conversion model — require constructing a new engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/route_types.h"
#include "graph/csr.h"
#include "graph/hierarchy.h"
#include "graph/landmarks.h"
#include "wdm/network.h"

namespace lumen {

/// Answers repeated (semi)lightpath queries over one network, amortizing
/// construction.  The engine copies everything it needs at build time, so
/// the source network need not outlive it; keeping the engine's patched
/// weights in sync with a mutating residual network is the caller's job
/// (SessionManager does this for the engine-backed policies).
class RouteEngine {
 public:
  /// Build-time configuration.
  struct Options {
    /// ALT landmarks precomputed on the physical topology at build time
    /// (farthest-point selection, base cheapest-wavelength weights).
    /// 0 disables the tables; goal-directed queries then rely on the
    /// per-target reverse-Dijkstra potential alone.
    std::uint32_t num_landmarks = 8;
    /// Seed of the deterministic farthest-point selection.
    std::uint64_t landmark_seed = 0x1a27'5eedULL;
    /// Build a partial contraction hierarchy over the flattened core
    /// (QueryOptions{use_hierarchy} then answers semilightpath queries
    /// with a bidirectional upward search).  Off by default: the
    /// elimination ordering costs noticeably more than the flatten
    /// itself, so only engines that expect many queries opt in.
    bool build_hierarchy = false;
    /// Elimination caps (see ContractionHierarchy::Options): nodes with
    /// more live neighbors, or whose elimination would add more shortcut
    /// arcs, stay in the never-contracted core.
    std::uint32_t hierarchy_degree_cap = 32;
    std::uint32_t hierarchy_fill_cap = 160;
    /// Scratch-less (non-const) hierarchy queries re-customize a stale
    /// hierarchy inline before searching.  Const/concurrent queries never
    /// customize — they fall back to the flat search while stale.
    /// Disable to control customization timing via customize_hierarchy().
    bool hierarchy_auto_customize = true;
  };

  /// Per-query configuration.
  struct QueryOptions {
    /// Run the semilightpath query as goal-directed A* (same optimum,
    /// fewer heap pops — see stats search_pops/settled/pruned).
    bool goal_directed = false;
    /// Include the ALT landmark term in the potential (needs tables;
    /// no-op when the engine was built with num_landmarks = 0).
    bool use_landmarks = true;
    /// Include the exact per-target reverse-Dijkstra term (lazily
    /// computed once per target, cached in the scratch).
    bool use_target_potential = true;
    /// Answer semilightpath queries with the bidirectional hierarchy
    /// search when the engine built one (Options{build_hierarchy}) and
    /// its customization is fresh; otherwise the query silently falls
    /// back to the flat (ALT/plain) search and bumps
    /// lumen.core.hierarchy.fallbacks.  Combine with goal_directed for
    /// the CH+ALT mode: the forward ascent is additionally pruned by the
    /// same residual-safe potential (admissible on shortcuts because a
    /// shortcut's value is at least the real distance it spans).
    bool use_hierarchy = false;
  };

  /// Builds the flattened core from the network's current availability
  /// (one-time O(k²n + km) cost; see stats().build_seconds).
  explicit RouteEngine(const WdmNetwork& net) : RouteEngine(net, Options{}) {}
  RouteEngine(const WdmNetwork& net, const Options& options);

  // --- queries ----------------------------------------------------------

  /// Optimal semilightpath s -> t on the current (patched) weights.
  /// Result contract identical to route_semilightpath(); stats report the
  /// prebuilt core size and build_seconds = 0 (construction is amortized).
  /// The scratch-less overloads use the engine's internal scratch and are
  /// NOT thread-safe; for concurrent queries pass one SearchScratch per
  /// thread (the engine itself is then safe to share read-only).
  [[nodiscard]] RouteResult route_semilightpath(NodeId s, NodeId t);
  [[nodiscard]] RouteResult route_semilightpath(NodeId s, NodeId t,
                                                const QueryOptions& query);
  [[nodiscard]] RouteResult route_semilightpath(NodeId s, NodeId t,
                                                SearchScratch& scratch) const {
    return route_semilightpath(s, t, scratch, QueryOptions{});
  }
  [[nodiscard]] RouteResult route_semilightpath(NodeId s, NodeId t,
                                                SearchScratch& scratch,
                                                const QueryOptions& query) const;

  /// Optimal lightpath (single wavelength end-to-end) s -> t: one early-
  /// exit Dijkstra per wavelength over the shared physical CSR.
  [[nodiscard]] RouteResult route_lightpath(NodeId s, NodeId t);
  [[nodiscard]] RouteResult route_lightpath(NodeId s, NodeId t,
                                            SearchScratch& scratch) const;

  enum class QueryKind { kSemilightpath, kLightpath };

  /// Routes a batch of (s, t) queries concurrently over the immutable
  /// flattened core (threads = 0 → one per hardware thread; 1 → inline).
  /// results[i] answers pairs[i].  Weights must not be patched while a
  /// batch is in flight.  `query` applies to semilightpath batches; each
  /// worker owns a scratch, so goal-directed batches sorted by target
  /// amortize the per-target potential within a worker.
  [[nodiscard]] std::vector<RouteResult> route_many(
      std::span<const std::pair<NodeId, NodeId>> pairs, unsigned threads = 0,
      QueryKind kind = QueryKind::kSemilightpath) const {
    return route_many(pairs, threads, kind, QueryOptions{});
  }
  [[nodiscard]] std::vector<RouteResult> route_many(
      std::span<const std::pair<NodeId, NodeId>> pairs, unsigned threads,
      QueryKind kind, const QueryOptions& query) const;

  // --- batched one-to-all costs (PHAST sweeps) ----------------------------

  /// Full semilightpath cost rows: result[i][t] = cheapest cost
  /// sources[i] → t for every physical node t (+inf when unreachable,
  /// always 0 on the diagonal).  When `query.use_hierarchy` is set and
  /// the engine's hierarchy is fresh, each worker serves up to
  /// ContractionHierarchy::kMaxLanes sources per lane-packed one-to-all
  /// sweep; otherwise every source falls back to one flat full Dijkstra
  /// over the core — never wrong, counted per source in
  /// lumen.core.sweep.fallbacks.  Either path yields bit-identical rows
  /// (the sweep re-accumulates in the flat search's addition order).
  /// threads = 0 → one per hardware thread, 1 → inline; weights must not
  /// be patched while a call is in flight.  The convenience overload
  /// enables use_hierarchy (and, non-const, self-heals a stale hierarchy
  /// under Options{hierarchy_auto_customize} first).
  [[nodiscard]] std::vector<std::vector<double>> bulk_costs(
      std::span<const NodeId> sources, unsigned threads = 0);
  [[nodiscard]] std::vector<std::vector<double>> bulk_costs(
      std::span<const NodeId> sources, unsigned threads,
      const QueryOptions& query);
  [[nodiscard]] std::vector<std::vector<double>> bulk_costs(
      std::span<const NodeId> sources, unsigned threads,
      const QueryOptions& query) const;

  // --- in-place residual updates ------------------------------------------

  /// Receipt of a reserve(): releases in O(1), carrying the pre-reserve
  /// cost.  Valid until released (not idempotent).
  struct ReserveHandle {
    std::uint32_t core_slot = CsrDigraph::kInvalidSlot;
    std::uint32_t phys_weight_index = 0;  ///< into the per-λ weight table
    double cost = 0.0;                    ///< weight to restore on release
  };

  /// Claims (e, λ): flips its transmission weight to +inf in both the
  /// semilightpath core and the per-wavelength subnetwork cache.
  /// O(log k0) slot lookup.  Requires λ ∈ base Λ(e).
  ReserveHandle reserve(LinkId e, Wavelength lambda);

  /// Restores the weight recorded in the handle.  O(1).
  void release(const ReserveHandle& handle);

  /// Sets w(e, λ) to `weight` (may be +inf: link down / λ unavailable).
  /// Span failure/repair path.  Requires λ ∈ base Λ(e), and `weight` must
  /// not drop below the base w(e, λ) — the goal-direction invariant (base
  /// distances stay admissible lower bounds) depends on weights only ever
  /// rising above their build-time snapshot.  Discounting a link below
  /// base is a structural change: build a new engine.
  void set_weight(LinkId e, Wavelength lambda, double weight);

  /// Current (patched) w(e, λ); +inf when λ ∉ base Λ(e) or patched out.
  [[nodiscard]] double weight(LinkId e, Wavelength lambda) const;

  // --- hierarchy maintenance ----------------------------------------------

  /// Re-evaluates the hierarchy arcs invalidated by weight patches since
  /// the last customization — only the support cone above the patched
  /// spans, not the whole shortcut set.  Returns the number of arcs
  /// re-evaluated (0 when no hierarchy was built or nothing is stale).
  /// Not thread-safe against in-flight queries.
  std::uint32_t customize_hierarchy();
  [[nodiscard]] bool has_hierarchy() const noexcept {
    return hierarchy_ != nullptr;
  }
  /// True when patches are pending customization; hierarchy queries fall
  /// back to the flat search until customize_hierarchy() runs (the
  /// scratch-less overloads do it automatically under
  /// Options{hierarchy_auto_customize}).
  [[nodiscard]] bool hierarchy_stale() const noexcept {
    return hierarchy_ != nullptr && hierarchy_->stale();
  }

  // --- introspection --------------------------------------------------------

  struct Stats {
    std::uint64_t core_nodes = 0;          ///< gadget nodes of G'
    std::uint64_t core_links = 0;          ///< gadget + transmission links
    std::uint64_t transmission_slots = 0;  ///< patchable (e, λ) slots
    std::uint32_t landmarks = 0;           ///< ALT landmarks precomputed
    std::uint32_t hierarchy_shortcuts = 0; ///< shortcut arcs added
    std::uint32_t hierarchy_core_nodes = 0;///< never-eliminated core nodes
    double build_seconds = 0.0;            ///< one-time flatten cost
    double landmark_seconds = 0.0;         ///< of which: landmark tables
    double hierarchy_seconds = 0.0;        ///< ordering + first customize
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t num_wavelengths() const noexcept { return k_; }

 private:
  /// What a core CSR slot stands for: a transmission of `phys` on
  /// `from` (== `to`), or a conversion `from`→`to` at `node`.
  struct SlotInfo {
    LinkId phys;  ///< invalid for conversion slots
    NodeId node;  ///< conversion site (invalid for transmission slots)
    Wavelength from;
    Wavelength to;
  };

  [[nodiscard]] RouteResult trivial_self_route() const;
  /// Binary-searches the per-link transmission table.  Fails (REQUIRE)
  /// when λ was not in the base Λ(e) — a structural change needs a rebuild.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> locate(
      LinkId e, Wavelength lambda) const;
  /// Returns the per-physical-node base distance-to-t table, filling the
  /// scratch's token-stamped cache slot (one reverse Dijkstra) on miss.
  [[nodiscard]] const double* target_potential(NodeId t,
                                               SearchScratch& scratch) const;

  std::uint32_t n_ = 0;  ///< physical nodes
  std::uint32_t k_ = 0;  ///< wavelength universe size

  // Semilightpath core: flattened G' plus seed/sink lists and metadata.
  std::unique_ptr<CsrDigraph> core_;
  std::vector<SlotInfo> slot_info_;             // per core slot
  std::vector<std::vector<NodeId>> sources_of_; // Y_v (aux node ids)
  std::vector<std::vector<NodeId>> sinks_of_;   // X_v (aux node ids)
  std::vector<std::uint32_t> core_phys_;        // core node -> physical node

  // Goal direction: base-weight lower-bound machinery.  All of it is
  // frozen at build time (see the residual-safety invariant above).
  LandmarkTables landmarks_;
  /// Reversed physical topology, each link weighted by its *base*
  /// cheapest-wavelength cost (the per-target potential's search graph).
  std::unique_ptr<CsrDigraph> rev_base_;
  /// Hierarchy over rev_base_ (built with Options{build_hierarchy}): the
  /// per-target reverse potential then warms from one one-to-all sweep
  /// instead of a flat Dijkstra.  Base weights are frozen, so this
  /// hierarchy is never stale.
  std::unique_ptr<ContractionHierarchy> rev_base_ch_;
  /// Base (build-time) weight per core slot; set_weight's floor.
  std::vector<double> base_core_weights_;
  /// Identity token stamped into scratch-resident potential caches.
  std::uint64_t potential_token_ = 0;

  // Per-link sorted (λ, core transmission slot) table for O(log k0) patch
  // lookup; entries parallel a (λ, phys weight index) table.
  struct TransSlot {
    Wavelength lambda;
    std::uint32_t core_slot;
    std::uint32_t phys_weight_index;
  };
  std::vector<std::vector<TransSlot>> trans_slots_;  // per physical link

  // Lightpath cache: one CSR of the physical topology, shared by all
  // wavelengths; weight rows lw_[λ * phys_links + slot].
  std::unique_ptr<CsrDigraph> phys_;
  std::vector<double> lightpath_weights_;

  // Optional partial contraction hierarchy over the core; weight patches
  // are mirrored into it (update_slot) and re-customized lazily.
  std::unique_ptr<ContractionHierarchy> hierarchy_;
  bool hierarchy_auto_customize_ = true;

  Stats stats_;
  SearchScratch scratch_;  // backs the scratch-less query overloads
};

}  // namespace lumen
