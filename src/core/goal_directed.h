// Goal-directed (A*) semilightpath search (extension).
//
// Theorem 1's Dijkstra explores the auxiliary graph uniformly.  For
// single-pair queries on large WANs, an admissible potential prunes most
// of that work: we run one reverse Dijkstra on the *physical* topology
// weighted by each link's cheapest wavelength cost; the resulting
// distance-to-t lower bound is a consistent heuristic for every auxiliary
// node of the corresponding physical node (conversion costs are >= 0 and
// every semilightpath suffix pays at least the cheapest-wavelength cost of
// each physical link it crosses).  A* with this potential returns the same
// optimum with strictly fewer heap pops — the `bench_goal_directed`
// ablation quantifies the savings.
//
// The potential is reusable: AstarPotentialCache keeps the reversed
// physical snapshot and the last target's distance row across calls, so a
// query stream (especially one with repeated targets) pays the reverse
// Dijkstra once instead of per call.  For amortizing the *auxiliary graph*
// as well, use RouteEngine with QueryOptions{.goal_directed = true}.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/route_types.h"
#include "graph/csr.h"
#include "wdm/network.h"

namespace lumen {

/// Caller-owned potential state for route_semilightpath_astar: the
/// reversed cheapest-wavelength physical snapshot plus the most recent
/// target's distance-to-t row.  One cache serves one network and one
/// thread at a time.
///
/// Invalidation is the caller's job.  The cached bounds were computed on
/// the wavelength costs current at fill time; they stay *admissible*
/// (and the search stays optimal) as long as no cost drops below that
/// snapshot — reserving wavelengths or failing links only raises costs
/// and merely makes the bounds prune less.  After any change that can
/// LOWER a cost (release, repair, re-pricing) call invalidate(), or the
/// next query may return a suboptimal route.
class AstarPotentialCache {
 public:
  /// Drops the snapshot and the cached target row; the next query
  /// rebuilds both from the network's current costs.
  void invalidate() noexcept {
    rev_phys_.reset();
    owner_ = nullptr;
    target_ = kNoTarget;
  }

  /// True when a snapshot is loaded (the next same-network query skips
  /// the rebuild; a same-target query also skips the reverse Dijkstra).
  [[nodiscard]] bool warm() const noexcept { return rev_phys_ != nullptr; }

 private:
  friend RouteResult route_semilightpath_astar(const WdmNetwork& net, NodeId s,
                                               NodeId t,
                                               AstarPotentialCache& cache);

  static constexpr std::uint32_t kNoTarget = 0xffffffffu;

  /// Returns the per-physical-node lower-bound row for target t, filling
  /// snapshot and row as needed.
  const double* bounds_for(const WdmNetwork& net, NodeId t);

  std::unique_ptr<CsrDigraph> rev_phys_;  ///< reversed min-cost physical CSR
  const WdmNetwork* owner_ = nullptr;     ///< network the snapshot mirrors
  std::uint32_t target_ = kNoTarget;
  std::vector<double> dist_;  ///< dist_[v] = lower bound on d(v, target_)
  SearchScratch scratch_;
};

/// Optimal semilightpath from s to t via goal-directed A* over G_{s,t}.
/// Result contract identical to route_semilightpath (same optimum; the
/// stats reflect the reduced search).  This overload builds its potential
/// from scratch each call; prefer the cache overload for query streams.
[[nodiscard]] RouteResult route_semilightpath_astar(const WdmNetwork& net,
                                                    NodeId s, NodeId t);

/// Same, reusing `cache` for the potential (see AstarPotentialCache for
/// the invalidation contract).
[[nodiscard]] RouteResult route_semilightpath_astar(const WdmNetwork& net,
                                                    NodeId s, NodeId t,
                                                    AstarPotentialCache& cache);

}  // namespace lumen
