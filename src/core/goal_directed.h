// Goal-directed (A*) semilightpath search (extension).
//
// Theorem 1's Dijkstra explores the auxiliary graph uniformly.  For
// single-pair queries on large WANs, an admissible potential prunes most
// of that work: we run one reverse Dijkstra on the *physical* topology
// weighted by each link's cheapest wavelength cost; the resulting
// distance-to-t lower bound is a consistent heuristic for every auxiliary
// node of the corresponding physical node (conversion costs are >= 0 and
// every semilightpath suffix pays at least the cheapest-wavelength cost of
// each physical link it crosses).  A* with this potential returns the same
// optimum with strictly fewer heap pops — the `bench_goal_directed`
// ablation quantifies the savings.
#pragma once

#include "core/route_types.h"
#include "wdm/network.h"

namespace lumen {

/// Optimal semilightpath from s to t via goal-directed A* over G_{s,t}.
/// Result contract identical to route_semilightpath (same optimum; the
/// stats reflect the reduced search).
[[nodiscard]] RouteResult route_semilightpath_astar(const WdmNetwork& net,
                                                    NodeId s, NodeId t);

}  // namespace lumen
