// Distributed all-pairs shortest paths via distance-vector exchange.
//
// The substrate Corollary 2 needs in spirit: every node maintains a vector
// of tentative distances to all destinations and, whenever entries
// improve, ships the improved entries to its *in*-neighbors (distances
// compose backward along directed links: d(u, t) <= w(u→v) + d(v, t)).
// This is the classic RIP-style protocol restricted to non-negative
// static weights, where it converges to exact shortest paths with no
// counting-to-infinity concerns.
//
// Message accounting matches the paper's convention: one message per
// (link, batch-of-entries) would undercount, so we count one message per
// link crossing and report entries separately (`entries` ≈ the k²n²-style
// volume Corollary 2's bound speaks to).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// Result of a distance-vector APSP execution.
struct DistanceVectorResult {
  /// dist[u][t] = shortest distance u -> t (+inf when unreachable).
  std::vector<std::vector<double>> dist;
  /// next_link[u][t] = first link of a shortest u -> t path (invalid when
  /// t == u or unreachable) — the forwarding table.
  std::vector<std::vector<LinkId>> next_link;
  /// Link crossings (each batched update = one message).
  std::uint64_t messages = 0;
  /// Total (destination, distance) entries shipped across all messages.
  std::uint64_t entries = 0;
  /// Synchronous rounds until quiescence.
  std::uint64_t rounds = 0;
};

/// Runs synchronous distance-vector APSP on `g` (non-negative weights;
/// +inf = absent).  Exact on convergence; terminates by quiescence.
[[nodiscard]] DistanceVectorResult distance_vector_apsp(const Digraph& g);

}  // namespace lumen
