// Asynchronous distributed semilightpath routing (extension).
//
// The same Theorem 3 protocol as dist_router, but executed on the
// event-driven AsyncNetwork: every message has its own random delay and
// nodes process deliveries one at a time, exactly Chandy–Misra's setting.
// Distributed Bellman–Ford is self-stabilizing under arbitrary schedules,
// so the converged optimum must be independent of the delay assignment —
// tests sweep seeds to confirm.  Message totals are generally higher than
// the synchronous schedule's (no per-round batching of offers).
#pragma once

#include <cstdint>

#include "dist/dist_router.h"  // DistRouteResult
#include "wdm/network.h"

namespace lumen {

/// Result of an asynchronous execution; `rounds` is repurposed as the
/// number of deliveries processed (there are no rounds), and
/// `virtual_time` is the simulated clock at quiescence.
struct AsyncRouteResult {
  bool found = false;
  double cost = 0.0;
  Semilightpath path;
  std::uint64_t messages = 0;
  double virtual_time = 0.0;
};

/// Routes s -> t on the asynchronous model with per-message delays drawn
/// uniformly from [min_delay, max_delay) using `seed`.
[[nodiscard]] AsyncRouteResult async_route_semilightpath(
    const WdmNetwork& net, NodeId s, NodeId t, std::uint64_t seed,
    double min_delay = 0.5, double max_delay = 1.5);

}  // namespace lumen
