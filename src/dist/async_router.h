// Asynchronous distributed semilightpath routing (extension).
//
// The same Theorem 3 protocol as dist_router, but executed on the
// event-driven AsyncNetwork: every message has its own random delay and
// nodes process deliveries one at a time, exactly Chandy–Misra's setting.
// Distributed Bellman–Ford is self-stabilizing under arbitrary schedules,
// so the converged optimum must be independent of the delay assignment —
// tests sweep seeds to confirm.  Message totals are generally higher than
// the synchronous schedule's (no per-round batching of offers).
//
// With a FaultPlan the router is hardened the same way as the synchronous
// one: epoch-stamped offers, retransmission sweeps scheduled by a virtual
// timeout whenever the event queue drains, and termination only on a full
// sweep sent after the plan's heal horizon that improves no label.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/dist_router.h"  // DistRouteResult
#include "dist/fault_plan.h"
#include "wdm/network.h"

namespace lumen {

/// Result of an asynchronous execution; `virtual_time` is the simulated
/// clock at quiescence (there are no rounds).
struct AsyncRouteResult {
  bool found = false;
  double cost = 0.0;
  Semilightpath path;
  std::uint64_t messages = 0;
  double virtual_time = 0.0;
  /// Converged best-arrival label per physical node (0 at the source,
  /// kInfiniteCost where unreachable) — the full Theorem 3 state, used by
  /// the schedule-independence tests to compare entire executions, not
  /// just one (s, t) readout.
  std::vector<double> node_costs;
  /// Retransmission sweeps executed (0 for fault-free runs).
  std::uint32_t retransmit_sweeps = 0;
  /// False only when a never-healing FaultPlan exhausted the sweep budget.
  bool converged = true;
  /// Causal trace id of the execution's span tree; 0 when tracing is
  /// compiled out with LUMEN_OBS_DISABLED.
  std::uint64_t trace_id = 0;
};

/// Tuning knobs of one asynchronous execution.
struct AsyncOptions {
  /// Per-message delay is uniform in [min_delay, max_delay); 0 <= min <=
  /// max (min == 0 is the harsher schedule with zero-latency deliveries).
  double min_delay = 0.5;
  double max_delay = 1.5;
  /// Fault plan to run under (nullptr = pristine network).  Mutated.
  FaultPlan* faults = nullptr;
  /// Retransmission-sweep budget for never-healing plans.
  std::uint32_t max_sweeps = 256;
  /// Virtual time between timeout-driven sweeps on an idle network;
  /// 0 picks max(max_delay, 1).
  double retransmit_timeout = 0.0;
};

/// Routes s -> t on the asynchronous model with per-message delays drawn
/// uniformly from [min_delay, max_delay) using `seed`.
[[nodiscard]] AsyncRouteResult async_route_semilightpath(
    const WdmNetwork& net, NodeId s, NodeId t, std::uint64_t seed,
    double min_delay = 0.5, double max_delay = 1.5);

/// As above with full options (fault plan, delays, sweep budget).
[[nodiscard]] AsyncRouteResult async_route_semilightpath(
    const WdmNetwork& net, NodeId s, NodeId t, std::uint64_t seed,
    const AsyncOptions& options);

}  // namespace lumen
