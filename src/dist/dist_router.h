// Distributed optimal semilightpath routing (Theorem 3 / Theorem 5).
//
// The auxiliary graph G_{s,t} is embedded into the physical network G:
// every physical node hosts its own bipartite gadget (the X_v arrival
// labels, the Y_v departure labels, and the conversion links between them),
// and only the E_org transmission links cross physical wires.  Messages
// carry (wavelength, offered distance); one message per (link, λ) offer.
// Gadget relaxation is free local computation, so the measured
// communication complexity is the paper's O(km) — O(m·k_0) when
// availability is k_0-bounded (Theorem 5) — and the round count is the
// O(kn) time complexity.
//
// The FaultPlan overload runs the same protocol hardened against a hostile
// network (message loss, duplication, reordering, outages): offers are
// epoch-stamped, lost information is recovered by timeout-driven
// retransmission sweeps, and termination is detected by a full sweep sent
// after the plan's heal horizon that improves no label — the quiescence
// check that stays correct under message loss (see docs/PROTOCOL.md,
// "Fault model").
#pragma once

#include <cstdint>
#include <vector>

#include "dist/fault_plan.h"
#include "wdm/network.h"
#include "wdm/semilightpath.h"

namespace lumen {

/// Result of a distributed routing execution.
struct DistRouteResult {
  bool found = false;
  /// C(P) of the optimal semilightpath (kInfiniteCost when !found).
  double cost = 0.0;
  /// The optimal semilightpath (reconstructed from the distributed state).
  Semilightpath path;
  /// Messages that crossed physical links.
  std::uint64_t messages = 0;
  /// Synchronous rounds until global quiescence.
  std::uint64_t rounds = 0;
  /// Retransmission sweeps executed (0 for fault-free runs).
  std::uint32_t retransmit_sweeps = 0;
  /// False when the sweep budget ran out before a clean post-heal sweep
  /// (only possible with a never-healing FaultPlan); labels are then
  /// best-effort.  Always true for fault-free and healed-plan runs.
  bool converged = true;
  /// Causal trace id of the execution's span tree (obs/trace_assembler.h
  /// rebuilds it from a SpanBuffer snapshot); 0 when tracing is compiled
  /// out with LUMEN_OBS_DISABLED.
  std::uint64_t trace_id = 0;
};

/// Distributed optimal semilightpath from s to t.  Produces the same
/// optimum as the centralized route_semilightpath (tests enforce this);
/// path reconstruction reads the converged per-node parent state directly
/// (a real deployment would run a |P|-message traceback, which does not
/// change the asymptotic message bound).
[[nodiscard]] DistRouteResult distributed_route_semilightpath(
    const WdmNetwork& net, NodeId s, NodeId t);

/// The fault-hardened protocol under `faults` (mutated: its RNG and
/// counters advance).  A plan whose drop-capable rules all heal converges
/// to the exact optimum; a never-healing plan terminates best-effort after
/// `max_sweeps` retransmission sweeps with converged == false.
[[nodiscard]] DistRouteResult distributed_route_semilightpath(
    const WdmNetwork& net, NodeId s, NodeId t, FaultPlan& faults,
    std::uint32_t max_sweeps = 256);

/// All-pairs distributed costs (Corollary 2 regime): runs the single-source
/// protocol from every node and aggregates message/round totals.
struct DistAllPairsResult {
  std::vector<std::vector<double>> cost;  ///< [s][t]
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
};
[[nodiscard]] DistAllPairsResult distributed_all_pairs(const WdmNetwork& net);

}  // namespace lumen
