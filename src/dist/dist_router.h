// Distributed optimal semilightpath routing (Theorem 3 / Theorem 5).
//
// The auxiliary graph G_{s,t} is embedded into the physical network G:
// every physical node hosts its own bipartite gadget (the X_v arrival
// labels, the Y_v departure labels, and the conversion links between them),
// and only the E_org transmission links cross physical wires.  Messages
// carry (wavelength, offered distance); one message per (link, λ) offer.
// Gadget relaxation is free local computation, so the measured
// communication complexity is the paper's O(km) — O(m·k_0) when
// availability is k_0-bounded (Theorem 5) — and the round count is the
// O(kn) time complexity.
#pragma once

#include <cstdint>
#include <vector>

#include "wdm/network.h"
#include "wdm/semilightpath.h"

namespace lumen {

/// Result of a distributed routing execution.
struct DistRouteResult {
  bool found = false;
  /// C(P) of the optimal semilightpath (kInfiniteCost when !found).
  double cost = 0.0;
  /// The optimal semilightpath (reconstructed from the distributed state).
  Semilightpath path;
  /// Messages that crossed physical links.
  std::uint64_t messages = 0;
  /// Synchronous rounds until global quiescence.
  std::uint64_t rounds = 0;
};

/// Distributed optimal semilightpath from s to t.  Produces the same
/// optimum as the centralized route_semilightpath (tests enforce this);
/// path reconstruction reads the converged per-node parent state directly
/// (a real deployment would run a |P|-message traceback, which does not
/// change the asymptotic message bound).
[[nodiscard]] DistRouteResult distributed_route_semilightpath(
    const WdmNetwork& net, NodeId s, NodeId t);

/// All-pairs distributed costs (Corollary 2 regime): runs the single-source
/// protocol from every node and aggregates message/round totals.
struct DistAllPairsResult {
  std::vector<std::vector<double>> cost;  ///< [s][t]
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
};
[[nodiscard]] DistAllPairsResult distributed_all_pairs(const WdmNetwork& net);

}  // namespace lumen
