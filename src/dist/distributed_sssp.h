// Distributed single-source shortest paths (Chandy–Misra style).
//
// Synchronous distributed Bellman–Ford: each node keeps a tentative
// distance, and whenever it improves, offers dist + w(e) to every
// out-neighbor next round.  Termination is global quiescence (no message
// in flight), the simulator-level equivalent of Chandy–Misra's diffusing
// termination detection.  Time is O(n) rounds on non-negative weights;
// message count is measured and reported (Θ(m) per relaxation wave).
//
// This is the building block the Theorem 3 router specializes; it is also
// exposed on plain digraphs for tests and the distributed benches.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// Result of a distributed SSSP execution.
struct DistributedSsspResult {
  /// dist[v]: shortest distance from the source (+inf when unreachable).
  std::vector<double> dist;
  /// parent_link[v]: tree link into v (invalid at source/unreached nodes).
  std::vector<LinkId> parent_link;
  /// Messages exchanged (communication complexity).
  std::uint64_t messages = 0;
  /// Rounds until quiescence (time complexity).
  std::uint64_t rounds = 0;
  /// Causal trace id of the execution's span tree; 0 when tracing is
  /// compiled out with LUMEN_OBS_DISABLED.
  std::uint64_t trace_id = 0;
};

/// Runs the distributed SSSP from `source` on `g` (non-negative weights;
/// +inf weights are treated as absent links).
[[nodiscard]] DistributedSsspResult distributed_sssp(const Digraph& g,
                                                     NodeId source);

}  // namespace lumen
