#include "dist/distributed_sssp.h"

#include "dist/sync_network.h"
#include "graph/dijkstra.h"  // kInfiniteCost
#include "obs/registry.h"

namespace lumen {

DistributedSsspResult distributed_sssp(const Digraph& g, NodeId source) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  DistributedSsspResult result;
  result.dist.assign(g.num_nodes(), kInfiniteCost);
  result.parent_link.assign(g.num_nodes(), LinkId::invalid());
  result.dist[source.value()] = 0.0;

  SyncNetwork<double> net(g);

  // A node whose distance improved broadcasts dist + w(e) on out-links.
  auto broadcast = [&](NodeId u) {
    const double du = result.dist[u.value()];
    for (const LinkId e : g.out_links(u)) {
      const double w = g.weight(e);
      if (w == kInfiniteCost) continue;
      net.send(e, du + w);
    }
  };

  static obs::LatencyHistogram& queue_depth =
      obs::Registry::global().histogram("lumen.dist.queue_depth");

  broadcast(source);
  while (net.advance()) {
    for (std::uint32_t vi = 0; vi < g.num_nodes(); ++vi) {
      const NodeId v{vi};
      const auto inbox = net.inbox(v);
      if (inbox.empty()) continue;
      queue_depth.record(inbox.size());
      // Local computation: fold all offers of this round, then broadcast
      // at most once (message economy; does not change correctness).
      bool improved = false;
      for (const auto& delivery : inbox) {
        if (delivery.payload < result.dist[vi]) {
          result.dist[vi] = delivery.payload;
          result.parent_link[vi] = delivery.link;
          improved = true;
        }
      }
      if (improved) broadcast(v);
    }
  }
  result.messages = net.total_messages();
  result.rounds = net.rounds();

  static obs::Counter& messages =
      obs::Registry::global().counter("lumen.dist.sssp.messages");
  static obs::Counter& rounds =
      obs::Registry::global().counter("lumen.dist.sssp.rounds");
  messages.add(result.messages);
  rounds.add(result.rounds);
  return result;
}

}  // namespace lumen
