#include "dist/distributed_sssp.h"

#include "dist/sync_network.h"
#include "graph/dijkstra.h"  // kInfiniteCost
#include "obs/registry.h"
#include "obs/trace_context.h"

namespace lumen {

namespace {

/// Wire payload: the offered distance plus the causal context of the span
/// that sent it (zero-sized semantics when tracing is compiled out).
struct SsspOffer {
  double dist;
  obs::TraceContext ctx;
};

}  // namespace

DistributedSsspResult distributed_sssp(const Digraph& g, NodeId source) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  DistributedSsspResult result;
  result.dist.assign(g.num_nodes(), kInfiniteCost);
  result.parent_link.assign(g.num_nodes(), LinkId::invalid());
  result.dist[source.value()] = 0.0;

  SyncNetwork<SsspOffer> net(g);

  obs::CausalSpan run_span("dist.sssp.run");
  run_span.set_node(source.value());
  result.trace_id = run_span.trace_id();

  // A node whose distance improved broadcasts dist + w(e) on out-links.
  auto broadcast = [&](NodeId u, const obs::TraceContext& ctx) {
    const double du = result.dist[u.value()];
    for (const LinkId e : g.out_links(u)) {
      const double w = g.weight(e);
      if (w == kInfiniteCost) continue;
      net.send(e, SsspOffer{du + w, ctx});
    }
  };

  static obs::LatencyHistogram& queue_depth =
      obs::Registry::global().histogram("lumen.dist.queue_depth");

  broadcast(source, run_span.context());
  while (net.advance()) {
    for (std::uint32_t vi = 0; vi < g.num_nodes(); ++vi) {
      const NodeId v{vi};
      const auto inbox = net.inbox(v);
      if (inbox.empty()) continue;
      queue_depth.record(inbox.size());
      // Local computation: fold all offers of this round, then broadcast
      // at most once (message economy; does not change correctness).  The
      // first improving offer is the causal parent of this node-round.
      bool improved = false;
      obs::TraceContext cause;
      for (const auto& delivery : inbox) {
        if (delivery.payload.dist < result.dist[vi]) {
          if (!improved) cause = delivery.payload.ctx;
          result.dist[vi] = delivery.payload.dist;
          result.parent_link[vi] = delivery.link;
          improved = true;
        }
      }
      if (improved) {
        obs::CausalSpan node_span("dist.node_round", cause);
        node_span.set_node(vi);
        const double round = static_cast<double>(net.rounds());
        node_span.set_virtual_interval(round, round);
        node_span.set_attributes(inbox.size(), 1);
        broadcast(v, node_span.context());
      }
    }
  }
  run_span.set_virtual_interval(0.0, static_cast<double>(net.rounds()));
  result.messages = net.total_messages();
  result.rounds = net.rounds();

  static obs::Counter& messages =
      obs::Registry::global().counter("lumen.dist.sssp.messages");
  static obs::Counter& rounds =
      obs::Registry::global().counter("lumen.dist.sssp.rounds");
  messages.add(result.messages);
  rounds.add(result.rounds);
  return result;
}

}  // namespace lumen
