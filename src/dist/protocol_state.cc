#include "dist/protocol_state.h"

#include "graph/dijkstra.h"  // kInfiniteCost

namespace lumen::dist_detail {

std::vector<GadgetState> make_gadgets(const WdmNetwork& net) {
  std::vector<GadgetState> gadgets(net.num_nodes());
  for (std::uint32_t vi = 0; vi < net.num_nodes(); ++vi) {
    const NodeId v{vi};
    GadgetState& gadget = gadgets[vi];
    gadget.in_lambdas = net.lambda_in(v).to_vector();
    gadget.out_lambdas = net.lambda_out(v).to_vector();
    gadget.dist_x.assign(gadget.in_lambdas.size(), kInfiniteCost);
    gadget.parent_x.assign(gadget.in_lambdas.size(), LinkId::invalid());
    gadget.dist_y.assign(gadget.out_lambdas.size(), kInfiniteCost);
    gadget.parent_y.assign(gadget.out_lambdas.size(), kNoParent);
  }
  return gadgets;
}

std::uint32_t best_arrival(const GadgetState& sink) {
  std::uint32_t best = kNoParent;
  for (std::uint32_t x = 0; x < sink.in_lambdas.size(); ++x) {
    if (sink.dist_x[x] == kInfiniteCost) continue;
    if (best == kNoParent || sink.dist_x[x] < sink.dist_x[best]) best = x;
  }
  return best;
}

Semilightpath trace_path(const WdmNetwork& net,
                         const std::vector<GadgetState>& gadgets, NodeId s,
                         NodeId t, std::uint32_t best_x) {
  std::vector<Hop> hops;
  NodeId at = t;
  std::uint32_t x = best_x;
  while (true) {
    const GadgetState& gadget = gadgets[at.value()];
    const LinkId e = gadget.parent_x[x];
    LUMEN_ASSERT(e.valid());
    const Wavelength lambda = gadget.in_lambdas[x];
    hops.push_back(Hop{e, lambda});
    const NodeId u = net.tail(e);
    const GadgetState& up = gadgets[u.value()];
    const std::uint32_t y = GadgetState::find(up.out_lambdas, lambda);
    LUMEN_ASSERT(y != kNoParent);
    const std::uint32_t parent = up.parent_y[y];
    LUMEN_ASSERT(parent != kNoParent);
    if (parent == kSourceParent) {
      LUMEN_ASSERT(u == s);
      break;
    }
    at = u;
    x = parent;
  }
  std::reverse(hops.begin(), hops.end());
  return Semilightpath(std::move(hops));
}

}  // namespace lumen::dist_detail
