// Deterministic, composable fault injection for the network simulators.
//
// A FaultPlan is a seeded set of rules the simulators consult on every
// send (and on every delivery, for receiver-side crashes):
//
//   drop_messages(p, until)   — each message is lost with probability p
//                               while time < until;
//   duplicate_messages(p)     — each delivered message grows a second copy
//                               with probability p (its own delay draw);
//   delay_spikes(p, extra)    — each message is late by `extra` time units
//                               (whole rounds on SyncNetwork) with
//                               probability p;
//   link_down(e, from, until) — every message sent on e inside the window
//                               is lost;
//   span_down(a, b, ...)      — both directions of the a–b span (a fiber
//                               cut; replayable into SessionManager's
//                               fail/repair path, see span_timeline());
//   node_crash(v, from, until)— v neither sends nor receives inside the
//                               window (fail-stop with persistent state:
//                               its labels survive the reboot);
//   partition(side, heal_at)  — messages crossing the (side, V∖side) cut
//                               are lost while time < heal_at.
//
// "Time" is whatever clock the attached simulator runs: the round number
// for SyncNetwork, virtual time for AsyncNetwork.  All randomness comes
// from the plan's own xoshiro stream, so a (seed, rule-set) pair replays
// bit-for-bit — the fuzz suites print exactly that pair on failure.
//
// A plan whose drop-capable rules all end by time T is *healed* after T:
// healed_after() returns T and the hardened routers keep retransmitting
// until a full sweep sent at or after T improves nothing, which is the
// loss-correct quiescence check (see docs/PROTOCOL.md, "Fault model").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/rng.h"
#include "util/strong_id.h"

namespace lumen {

/// What the plan decided for one send.
struct FaultDecision {
  bool drop = false;          ///< message (and all copies) lost
  std::uint32_t copies = 1;   ///< 1 normally, 2 when duplicated
  double extra_delay = 0.0;   ///< added latency (whole rounds when sync)
};

/// Per-cause fault accounting (always on, unlike the obs counters which
/// compile out under LUMEN_OBS_DISABLED).
struct FaultStats {
  std::uint64_t sends = 0;  ///< decide_send calls
  std::uint64_t dropped_random = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t dropped_crash = 0;  ///< sender or receiver crashed
  std::uint64_t dropped_partition = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;

  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    return dropped_random + dropped_link_down + dropped_crash +
           dropped_partition;
  }
};

/// One span-state transition derived from span_down windows, in a shape
/// SessionManager::apply_span_state can replay (down → fail_span,
/// up → repair_span).
struct SpanEvent {
  NodeId a;
  NodeId b;
  double time = 0.0;
  bool down = false;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0);

  // --- rule builders (chainable; one rule per kind, later calls replace) --

  /// Drops each message with probability `p` while time < `until`.
  FaultPlan& drop_messages(double p, double until);
  /// Duplicates each delivered message with probability `p` (harmless to
  /// the min-fold protocols, so it never needs to heal).
  FaultPlan& duplicate_messages(double p);
  /// Delays each message by `extra` additional time units with
  /// probability `p` (rounded to whole rounds on SyncNetwork).
  FaultPlan& delay_spikes(double p, double extra);
  /// Loses every message sent on `e` while from <= time < until.
  FaultPlan& link_down(LinkId e, double from, double until);
  /// Loses every message on either direction of the a–b span while
  /// from <= time < until; also exported through span_timeline().
  FaultPlan& span_down(NodeId a, NodeId b, double from, double until);
  /// Fail-stop window: v neither sends nor receives while
  /// from <= time < until (state persists across the window).
  FaultPlan& node_crash(NodeId v, double from, double until);
  /// Loses every message between `side` and its complement while
  /// time < heal_at.
  FaultPlan& partition(std::vector<NodeId> side, double heal_at);

  // --- simulator hooks ----------------------------------------------------

  /// Consulted once per send.  Deterministic given the call sequence.
  FaultDecision decide_send(NodeId tail, NodeId head, LinkId link,
                            double send_time);
  /// Consulted once per (copy, delivery): false when the receiver is
  /// crashed at `delivery_time` (counted as a crash drop).
  [[nodiscard]] bool deliverable(NodeId head, double delivery_time);

  // --- introspection ------------------------------------------------------

  /// The earliest time from which no rule can drop a message any more;
  /// +inf for a never-healing plan, 0 when no drop-capable rules exist.
  [[nodiscard]] double healed_after() const noexcept;

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// One-line replay description, e.g.
  /// "seed=7 drop(0.2,<8) span(1-2@[0,4)) partition(|side|=3,<8)".
  [[nodiscard]] std::string describe() const;

  /// The span_down windows flattened into a time-sorted down/up event
  /// sequence (ties: downs before ups, then builder order).
  [[nodiscard]] std::vector<SpanEvent> span_timeline() const;

  /// A randomized composition of rules, all healed by `heal_at`, suitable
  /// for fuzzing: same (seed, topology, heal_at) → identical plan.
  [[nodiscard]] static FaultPlan random_plan(std::uint64_t seed,
                                             const Digraph& topology,
                                             double heal_at);

 private:
  struct Window {
    double from = 0.0;
    double until = 0.0;
    [[nodiscard]] bool contains(double t) const noexcept {
      return from <= t && t < until;
    }
  };
  struct LinkDown {
    LinkId link;
    Window window;
  };
  struct SpanDown {
    NodeId a;
    NodeId b;
    Window window;
  };
  struct Crash {
    NodeId node;
    Window window;
  };

  [[nodiscard]] bool in_side(NodeId v) const;
  [[nodiscard]] bool crashed(NodeId v, double t) const;

  std::uint64_t seed_;
  Rng rng_;
  double drop_p_ = 0.0;
  double drop_until_ = 0.0;
  double dup_p_ = 0.0;
  double spike_p_ = 0.0;
  double spike_extra_ = 0.0;
  std::vector<LinkDown> link_downs_;
  std::vector<SpanDown> span_downs_;
  std::vector<Crash> crashes_;
  std::vector<std::uint32_t> side_;  ///< sorted node ids of the partition
  double partition_heal_ = 0.0;
  FaultStats stats_;
};

}  // namespace lumen
