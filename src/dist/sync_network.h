// Synchronous message-passing network simulator.
//
// Realizes the "distributed computational model" Theorems 3/5 assume:
// computation proceeds in rounds; a message sent on a physical link in
// round r is delivered to the link's head in round r+1; local computation
// is free; the two measured quantities are messages (communication
// complexity) and rounds (time complexity).  Gadget links of the embedded
// G_{s,t} live inside physical nodes, so traffic on them is local and is
// deliberately NOT counted — exactly the accounting in the proof of
// Theorem 3.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "util/error.h"
#include "util/strong_id.h"

namespace lumen {

/// A synchronous network over a fixed physical topology.  Payload is the
/// algorithm's message type (kept small and trivially copyable in all
/// in-tree algorithms).
template <class Payload>
class SyncNetwork {
 public:
  /// One delivered message: the physical link it arrived on + payload.
  struct Delivery {
    LinkId link;
    Payload payload;
  };

  /// The topology must outlive the simulator.
  explicit SyncNetwork(const Digraph& topology)
      : topology_(&topology),
        inbox_(topology.num_nodes()),
        outbox_(topology.num_nodes()) {}

  /// Queues a message on `link` for delivery next round.
  void send(LinkId link, Payload payload) {
    LUMEN_REQUIRE(link.value() < topology_->num_links());
    outbox_[topology_->head(link).value()].push_back(
        Delivery{link, std::move(payload)});
    ++pending_;
  }

  /// Advances one round: everything sent since the previous advance() is
  /// delivered.  Returns false (and delivers nothing) when no messages
  /// were in flight — the global quiescence that terminates the in-tree
  /// algorithms.
  bool advance() {
    if (pending_ == 0) return false;
    ++rounds_;
    messages_ += pending_;
    pending_ = 0;
    for (std::size_t v = 0; v < inbox_.size(); ++v) {
      inbox_[v].clear();
      std::swap(inbox_[v], outbox_[v]);
    }
    return true;
  }

  /// Messages delivered to node v in the current round.
  [[nodiscard]] std::span<const Delivery> inbox(NodeId v) const {
    LUMEN_REQUIRE(v.value() < inbox_.size());
    return inbox_[v.value()];
  }

  /// Total messages delivered so far (the communication complexity).
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return messages_;
  }
  /// Rounds executed so far (the time complexity).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

  [[nodiscard]] const Digraph& topology() const noexcept {
    return *topology_;
  }

 private:
  const Digraph* topology_;
  std::vector<std::vector<Delivery>> inbox_;
  std::vector<std::vector<Delivery>> outbox_;
  std::uint64_t pending_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace lumen
