// Synchronous message-passing network simulator.
//
// Realizes the "distributed computational model" Theorems 3/5 assume:
// computation proceeds in rounds; a message sent on a physical link in
// round r is delivered to the link's head in round r+1; local computation
// is free; the two measured quantities are messages (communication
// complexity) and rounds (time complexity).  Gadget links of the embedded
// G_{s,t} live inside physical nodes, so traffic on them is local and is
// deliberately NOT counted — exactly the accounting in the proof of
// Theorem 3.
//
// An optional FaultPlan (set_fault_plan) subjects every send to drops,
// duplication, delay spikes (delivery pushed extra whole rounds), link/span
// outages, crash windows, and partitions; the happy-path API and its
// message/round accounting are unchanged when no plan is attached.  The
// plan's clock is the round number.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "dist/fault_plan.h"
#include "graph/digraph.h"
#include "util/error.h"
#include "util/strong_id.h"

namespace lumen {

/// A synchronous network over a fixed physical topology.  Payload is the
/// algorithm's message type (kept small and trivially copyable in all
/// in-tree algorithms).
template <class Payload>
class SyncNetwork {
 public:
  /// One delivered message: the physical link it arrived on + payload.
  struct Delivery {
    LinkId link;
    Payload payload;
  };

  /// The topology must outlive the simulator.
  explicit SyncNetwork(const Digraph& topology)
      : topology_(&topology),
        inbox_(topology.num_nodes()),
        outbox_(topology.num_nodes()) {}

  /// Attaches (or detaches, with nullptr) a fault plan consulted on every
  /// subsequent send.  The plan must outlive the simulator.
  void set_fault_plan(FaultPlan* plan) noexcept { faults_ = plan; }

  /// Queues a message on `link` for delivery next round (later, under a
  /// fault plan with delay spikes; never, when the plan drops it).
  void send(LinkId link, Payload payload) {
    LUMEN_REQUIRE(link.value() < topology_->num_links());
    const NodeId head = topology_->head(link);
    if (faults_ == nullptr) {
      outbox_[head.value()].push_back(Delivery{link, std::move(payload)});
      ++pending_;
      return;
    }
    const double now = static_cast<double>(rounds_);
    const FaultDecision decision =
        faults_->decide_send(topology_->tail(link), head, link, now);
    if (decision.drop) return;
    const auto extra = static_cast<std::uint64_t>(decision.extra_delay);
    for (std::uint32_t copy = 0; copy < decision.copies; ++copy) {
      if (!faults_->deliverable(head, now + 1.0 + static_cast<double>(extra)))
        continue;
      if (extra == 0) {
        outbox_[head.value()].push_back(Delivery{link, payload});
      } else {
        delayed_[rounds_ + 1 + extra].push_back(
            {head.value(), Delivery{link, payload}});
      }
      ++pending_;
    }
  }

  /// Advances one round: everything sent since the previous advance() —
  /// plus any fault-delayed messages now due — is delivered.  Returns
  /// false (and delivers nothing) when no messages are in flight — the
  /// global quiescence that terminates the in-tree algorithms.  (Under
  /// message loss this omniscient signal is NOT a correct termination
  /// proof; the hardened routers layer retransmission sweeps on top.)
  bool advance() {
    if (pending_ == 0) return false;
    ++rounds_;
    std::uint64_t delivered = 0;
    for (std::size_t v = 0; v < inbox_.size(); ++v) {
      inbox_[v].clear();
      std::swap(inbox_[v], outbox_[v]);
      delivered += inbox_[v].size();
    }
    while (!delayed_.empty() && delayed_.begin()->first <= rounds_) {
      for (auto& [node, delivery] : delayed_.begin()->second) {
        inbox_[node].push_back(std::move(delivery));
        ++delivered;
      }
      delayed_.erase(delayed_.begin());
    }
    messages_ += delivered;
    pending_ -= delivered;
    return true;
  }

  /// An idle round: time passes, nothing is delivered.  Models a
  /// retransmission timer firing while the network is quiescent, letting
  /// the clock cross fault windows.  Only legal when nothing is in flight.
  void tick() {
    LUMEN_REQUIRE(pending_ == 0);
    ++rounds_;
  }

  /// Messages delivered to node v in the current round.
  [[nodiscard]] std::span<const Delivery> inbox(NodeId v) const {
    LUMEN_REQUIRE(v.value() < inbox_.size());
    return inbox_[v.value()];
  }

  /// Total messages delivered so far (the communication complexity).
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return messages_;
  }
  /// Rounds executed so far (the time complexity).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

  [[nodiscard]] const Digraph& topology() const noexcept {
    return *topology_;
  }

 private:
  const Digraph* topology_;
  std::vector<std::vector<Delivery>> inbox_;
  std::vector<std::vector<Delivery>> outbox_;
  /// Fault-delayed deliveries keyed by due round (head node, message).
  std::map<std::uint64_t, std::vector<std::pair<std::uint32_t, Delivery>>>
      delayed_;
  FaultPlan* faults_ = nullptr;
  std::uint64_t pending_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace lumen
