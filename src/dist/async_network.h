// Event-driven asynchronous network simulator.
//
// Chandy–Misra's actual model: no rounds, every message experiences its
// own (bounded, random) delay, and nodes react to messages one at a time
// in delivery order.  The async router uses this to show the Theorem 3
// protocol is schedule-independent: the converged labels (and hence the
// optimum) match the synchronous execution for every delay assignment.
//
// An optional FaultPlan (set_fault_plan) subjects every send to drops,
// duplication (each copy draws its own delay), delay spikes, link/span
// outages, crash windows, and partitions; the happy-path API is unchanged
// when no plan is attached.  The plan's clock is the virtual time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "dist/fault_plan.h"
#include "graph/digraph.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strong_id.h"

namespace lumen {

/// An asynchronous network over a fixed physical topology.  Each send
/// schedules one delivery at now + U[min_delay, max_delay); deliveries
/// are processed in global time order (FIFO per link is NOT guaranteed,
/// which is the harsher model).
template <class Payload>
class AsyncNetwork {
 public:
  /// One delivered message.
  struct Delivery {
    double time;
    LinkId link;
    Payload payload;
  };

  /// The topology must outlive the simulator.  Delays are uniform in
  /// [min_delay, max_delay); 0 <= min <= max.  min_delay == 0 is legal
  /// (and harsher: instant deliveries collapse the schedule's slack);
  /// min == max == 0 delivers everything at the send timestamp, ordered
  /// only by the deterministic sequence tie-break.
  AsyncNetwork(const Digraph& topology, Rng rng, double min_delay = 0.5,
               double max_delay = 1.5)
      : topology_(&topology),
        rng_(rng),
        min_delay_(min_delay),
        max_delay_(max_delay) {
    LUMEN_REQUIRE(min_delay >= 0.0 && min_delay <= max_delay);
  }

  /// Attaches (or detaches, with nullptr) a fault plan consulted on every
  /// subsequent send.  The plan must outlive the simulator.
  void set_fault_plan(FaultPlan* plan) noexcept { faults_ = plan; }

  /// Sends a message on `link`; it will be delivered after a random delay
  /// (possibly duplicated/spiked/dropped under a fault plan).
  void send(LinkId link, Payload payload) {
    LUMEN_REQUIRE(link.value() < topology_->num_links());
    if (faults_ == nullptr) {
      const double at = now_ + rng_.next_double_in(min_delay_, max_delay_);
      queue_.push(Event{at, sequence_++, link, std::move(payload)});
      return;
    }
    const NodeId head = topology_->head(link);
    const FaultDecision decision =
        faults_->decide_send(topology_->tail(link), head, link, now_);
    if (decision.drop) return;
    for (std::uint32_t copy = 0; copy < decision.copies; ++copy) {
      const double at = now_ + decision.extra_delay +
                        rng_.next_double_in(min_delay_, max_delay_);
      if (!faults_->deliverable(head, at)) continue;
      queue_.push(Event{at, sequence_++, link, payload});
    }
  }

  /// Pops the earliest in-flight message and advances the clock to its
  /// delivery time; std::nullopt when the network is quiescent.
  std::optional<Delivery> next() {
    if (queue_.empty()) return std::nullopt;
    Event event = queue_.top();
    queue_.pop();
    // max(): the clock never runs backwards, even if advance_to() jumped
    // past an in-flight event's delivery time.
    now_ = std::max(now_, event.time);
    ++messages_;
    return Delivery{event.time, event.link, std::move(event.payload)};
  }

  /// Jumps the clock forward to `t` (no-op when t <= now).  Models a
  /// retransmission timeout firing on an idle network, letting the clock
  /// cross fault windows.
  void advance_to(double t) noexcept { now_ = std::max(now_, t); }

  [[nodiscard]] double now() const noexcept { return now_; }
  /// Messages delivered so far.
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return messages_;
  }
  [[nodiscard]] bool quiescent() const noexcept { return queue_.empty(); }
  [[nodiscard]] const Digraph& topology() const noexcept {
    return *topology_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;  // deterministic tie-break
    LinkId link;
    Payload payload;

    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  const Digraph* topology_;
  Rng rng_;
  double min_delay_;
  double max_delay_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  FaultPlan* faults_ = nullptr;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace lumen
