// Event-driven asynchronous network simulator.
//
// Chandy–Misra's actual model: no rounds, every message experiences its
// own (bounded, random) delay, and nodes react to messages one at a time
// in delivery order.  The async router uses this to show the Theorem 3
// protocol is schedule-independent: the converged labels (and hence the
// optimum) match the synchronous execution for every delay assignment.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "graph/digraph.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strong_id.h"

namespace lumen {

/// An asynchronous network over a fixed physical topology.  Each send
/// schedules one delivery at now + U[min_delay, max_delay); deliveries
/// are processed in global time order (FIFO per link is NOT guaranteed,
/// which is the harsher model).
template <class Payload>
class AsyncNetwork {
 public:
  /// One delivered message.
  struct Delivery {
    double time;
    LinkId link;
    Payload payload;
  };

  /// The topology must outlive the simulator.  Delays are uniform in
  /// [min_delay, max_delay); both must be > 0 and min <= max.
  AsyncNetwork(const Digraph& topology, Rng rng, double min_delay = 0.5,
               double max_delay = 1.5)
      : topology_(&topology),
        rng_(rng),
        min_delay_(min_delay),
        max_delay_(max_delay) {
    LUMEN_REQUIRE(min_delay > 0.0 && min_delay <= max_delay);
  }

  /// Sends a message on `link`; it will be delivered after a random delay.
  void send(LinkId link, Payload payload) {
    LUMEN_REQUIRE(link.value() < topology_->num_links());
    const double at =
        now_ + rng_.next_double_in(min_delay_, max_delay_);
    queue_.push(Event{at, sequence_++, link, std::move(payload)});
  }

  /// Pops the earliest in-flight message and advances the clock to its
  /// delivery time; std::nullopt when the network is quiescent.
  std::optional<Delivery> next() {
    if (queue_.empty()) return std::nullopt;
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++messages_;
    return Delivery{event.time, event.link, std::move(event.payload)};
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  /// Messages delivered so far.
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return messages_;
  }
  [[nodiscard]] bool quiescent() const noexcept { return queue_.empty(); }
  [[nodiscard]] const Digraph& topology() const noexcept {
    return *topology_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;  // deterministic tie-break
    LinkId link;
    Payload payload;

    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  const Digraph* topology_;
  Rng rng_;
  double min_delay_;
  double max_delay_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace lumen
