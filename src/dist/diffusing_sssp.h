// Distributed SSSP with Dijkstra–Scholten diffusing-computation
// termination detection.
//
// The synchronous simulator (distributed_sssp) detects quiescence by
// omniscience — it can see that no message is in flight.  A real
// asynchronous network cannot; Chandy–Misra's algorithm [3] pairs the
// Bellman–Ford relaxation with Dijkstra–Scholten termination: every basic
// message is acknowledged, each process remembers its *engager* and holds
// that ack until its own deficit (sent-but-unacked count) drains to zero,
// and the source declares termination exactly when its deficit hits zero.
//
// This module implements that faithfully on the event-driven AsyncNetwork:
//   - basic messages carry distance offers (one per link crossing),
//   - ack messages travel on a control overlay (counted separately),
//   - the engager tree grows and shrinks as the computation diffuses,
//   - termination is *detected by the source*, not by the simulator.
// Tests assert the detection fires exactly at true quiescence and that
// ack traffic equals basic traffic (every offer is acked exactly once).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/strong_id.h"

namespace lumen {

/// Result of a diffusing-computation SSSP execution.
struct DiffusingSsspResult {
  /// dist[v]: shortest distance from the source (+inf when unreachable).
  std::vector<double> dist;
  /// parent_link[v]: tree link into v (invalid at source/unreached nodes).
  std::vector<LinkId> parent_link;
  /// Basic (distance-offer) messages delivered.
  std::uint64_t basic_messages = 0;
  /// Acknowledgement messages delivered (== basic_messages on success).
  std::uint64_t ack_messages = 0;
  /// Virtual time at which the *source* detected termination.
  double detection_time = 0.0;
  /// Virtual time at which the network actually went quiescent (the
  /// simulator's ground truth; detection_time >= quiescence_time).
  double quiescence_time = 0.0;
  /// True when the source's detection coincided with real quiescence of
  /// basic traffic (sanity flag; always true unless the run was aborted).
  bool detected = false;
};

/// Runs Chandy–Misra-style SSSP with Dijkstra–Scholten termination from
/// `source` on `g` (non-negative weights; +inf = absent link), with
/// per-message delays uniform in [min_delay, max_delay) from `seed`.
[[nodiscard]] DiffusingSsspResult diffusing_sssp(const Digraph& g,
                                                 NodeId source,
                                                 std::uint64_t seed,
                                                 double min_delay = 0.5,
                                                 double max_delay = 1.5);

}  // namespace lumen
