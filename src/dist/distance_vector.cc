#include "dist/distance_vector.h"

#include <utility>

#include "dist/sync_network.h"
#include "graph/dijkstra.h"  // kInfiniteCost

namespace lumen {

namespace {

/// One improved entry: "I can reach `destination` at cost `dist`".
struct VectorUpdate {
  std::vector<std::pair<NodeId, double>> improved;
};

}  // namespace

DistanceVectorResult distance_vector_apsp(const Digraph& g) {
  const std::uint32_t n = g.num_nodes();
  DistanceVectorResult result;
  result.dist.assign(n, std::vector<double>(n, kInfiniteCost));
  result.next_link.assign(n, std::vector<LinkId>(n, LinkId::invalid()));
  for (std::uint32_t v = 0; v < n; ++v) result.dist[v][v] = 0.0;

  // Distance information flows *against* link direction (a node's
  // distances depend on its out-neighbors'), while SyncNetwork delivers
  // along it.  Run the simulator on the reversed topology; reversed link
  // i corresponds to original link i (same index), so message accounting
  // still charges the same physical wire.
  Digraph reversed(n);
  reversed.reserve_links(g.num_links());
  for (std::uint32_t ei = 0; ei < g.num_links(); ++ei) {
    const LinkId e{ei};
    reversed.add_link(g.head(e), g.tail(e), g.weight(e));
  }
  SyncNetwork<VectorUpdate> sim(reversed);

  auto broadcast = [&](NodeId v,
                       std::vector<std::pair<NodeId, double>> improved) {
    if (improved.empty()) return;
    for (const LinkId e : reversed.out_links(v)) {
      if (reversed.weight(e) == kInfiniteCost) continue;
      sim.send(e, VectorUpdate{improved});
      result.entries += improved.size();
    }
  };

  // Round 0: every node announces itself.
  for (std::uint32_t v = 0; v < n; ++v)
    broadcast(NodeId{v}, {{NodeId{v}, 0.0}});

  while (sim.advance()) {
    for (std::uint32_t ui = 0; ui < n; ++ui) {
      const NodeId u{ui};
      const auto inbox = sim.inbox(u);
      if (inbox.empty()) continue;
      std::vector<std::pair<NodeId, double>> improved;
      for (const auto& delivery : inbox) {
        // The reversed link corresponds to the original link with the
        // same index: original tail is u, original head is the sender.
        const LinkId original{delivery.link.value()};
        const double w = g.weight(original);
        for (const auto& [destination, dist_from_sender] :
             delivery.payload.improved) {
          const double candidate = w + dist_from_sender;
          if (candidate < result.dist[ui][destination.value()]) {
            result.dist[ui][destination.value()] = candidate;
            result.next_link[ui][destination.value()] = original;
            // Coalesce: one improved entry per destination per round.
            bool merged = false;
            for (auto& entry : improved) {
              if (entry.first == destination) {
                entry.second = candidate;
                merged = true;
                break;
              }
            }
            if (!merged) improved.emplace_back(destination, candidate);
          }
        }
      }
      broadcast(u, std::move(improved));
    }
  }
  result.messages = sim.total_messages();
  result.rounds = sim.rounds();
  return result;
}

}  // namespace lumen
