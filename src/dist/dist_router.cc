#include "dist/dist_router.h"

#include <algorithm>
#include <cmath>

#include "dist/protocol_state.h"
#include "dist/sync_network.h"
#include "graph/dijkstra.h"  // kInfiniteCost
#include "obs/registry.h"
#include "obs/trace_context.h"

namespace lumen {

namespace {

using dist_detail::GadgetState;
using dist_detail::kNoParent;
using dist_detail::kSourceParent;
using dist_detail::Offer;

/// The converged global state of one protocol execution from source s.
struct ProtocolRun {
  std::vector<GadgetState> gadgets;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  std::uint32_t sweeps = 0;
  bool converged = true;
  /// Causal trace of this execution (0 when tracing is compiled out).
  std::uint64_t trace_id = 0;
};

/// Executes the synchronous protocol from source s until quiescence.
/// With a FaultPlan attached, layers epoch-stamped retransmission sweeps
/// on top and terminates only on the loss-correct condition: a full sweep
/// sent at or after the plan's heal horizon that improves no label.
ProtocolRun run_protocol(const WdmNetwork& net, NodeId s, FaultPlan* faults,
                         std::uint32_t max_sweeps) {
  ProtocolRun run;
  run.gadgets = dist_detail::make_gadgets(net);

  SyncNetwork<Offer> sim(net.topology());
  if (faults != nullptr) sim.set_fault_plan(faults);
  const ConversionModel& conv = net.conversion();
  std::uint32_t epoch = 0;

  // Root span of the whole execution.  Ambient, so a run launched from
  // inside SessionManager::open lands under that request's rwa.open span;
  // standalone runs start a fresh trace.  Every message carries a context
  // descending from this root, which is what makes the offline assembler
  // able to rebuild the run as one causal tree.
  obs::CausalSpan run_span("dist.sync.run");
  run_span.set_node(s.value());
  run.trace_id = run_span.trace_id();

  // Broadcasts the improved departure label y_v(λ') over every out-link
  // carrying λ'.  One message per (link, λ') — the E_org embedding.  The
  // offer is stamped with the causal context of whatever span caused the
  // improvement (seeding, a node round, or a retransmission sweep).
  auto broadcast_y = [&](NodeId v, std::uint32_t y_index,
                         const obs::TraceContext& ctx) {
    const GadgetState& gadget = run.gadgets[v.value()];
    const Wavelength lambda = gadget.out_lambdas[y_index];
    const double dy = gadget.dist_y[y_index];
    for (const LinkId e : net.out_links(v)) {
      const double w = net.link_cost(e, lambda);
      if (w == kInfiniteCost) continue;
      sim.send(e, Offer{lambda, dy + w, epoch, ctx});
    }
  };

  // Source seeding: s' -> Y_s ties at distance 0.
  {
    GadgetState& source_gadget = run.gadgets[s.value()];
    for (std::uint32_t y = 0; y < source_gadget.out_lambdas.size(); ++y) {
      source_gadget.dist_y[y] = 0.0;
      source_gadget.parent_y[y] = kSourceParent;
      broadcast_y(s, y, run_span.context());
    }
  }

  static obs::LatencyHistogram& queue_depth =
      obs::Registry::global().histogram("lumen.dist.queue_depth");
  static obs::Counter& stale_offers =
      obs::Registry::global().counter("lumen.dist.faults.stale_offers");
  static obs::Counter& redundant_retransmits =
      obs::Registry::global().counter(
          "lumen.dist.faults.redundant_retransmits");

  // Delivers until the simulator goes quiescent; true when any arrival
  // label improved.
  std::vector<std::uint32_t> dirty_x;
  auto drain = [&]() {
    bool improved = false;
    while (sim.advance()) {
      for (std::uint32_t vi = 0; vi < net.num_nodes(); ++vi) {
        const NodeId v{vi};
        const auto inbox = sim.inbox(v);
        if (inbox.empty()) continue;
        queue_depth.record(inbox.size());
        GadgetState& gadget = run.gadgets[vi];

        // 1. Fold all offers of this round into the arrival labels X_v.
        //    The first improving offer's context becomes the causal parent
        //    of this node-round: that is the message that woke the node.
        dirty_x.clear();
        obs::TraceContext cause;
        for (const auto& delivery : inbox) {
          const Offer& offer = delivery.payload;
          const std::uint32_t x =
              GadgetState::find(gadget.in_lambdas, offer.lambda);
          LUMEN_ASSERT(x != kNoParent);
          if (offer.dist < gadget.dist_x[x]) {
            if (std::find(dirty_x.begin(), dirty_x.end(), x) ==
                dirty_x.end())
              dirty_x.push_back(x);
            if (!cause.valid()) cause = offer.ctx;
            gadget.dist_x[x] = offer.dist;
            gadget.parent_x[x] = delivery.link;
            improved = true;
          } else if (faults != nullptr) {
            // The min-fold discards it either way; the stamps tell the
            // accounting whether it was duplicated/old traffic or a
            // retransmission that carried nothing new.
            stale_offers.add();
            if (offer.epoch > 0) redundant_retransmits.add();
          }
        }
        if (dirty_x.empty()) continue;

        // 2. Local gadget relaxation X_v -> Y_v (free computation), then
        //    broadcast each improved departure label once, under a span
        //    for this (node, round) of useful work.
        obs::CausalSpan node_span("dist.node_round", cause);
        node_span.set_node(vi);
        const double round = static_cast<double>(sim.rounds());
        node_span.set_virtual_interval(round, round);
        node_span.set_attributes(inbox.size(), dirty_x.size());
        for (const std::uint32_t x : dirty_x) {
          const Wavelength from = gadget.in_lambdas[x];
          const double dx = gadget.dist_x[x];
          for (std::uint32_t y = 0; y < gadget.out_lambdas.size(); ++y) {
            const double c = conv.cost(v, from, gadget.out_lambdas[y]);
            if (c == kInfiniteCost) continue;
            if (dx + c < gadget.dist_y[y]) {
              gadget.dist_y[y] = dx + c;
              gadget.parent_y[y] = x;
              broadcast_y(v, y, node_span.context());
            }
          }
        }
      }
    }
    return improved;
  };

  (void)drain();

  if (faults != nullptr) {
    // Timeout-driven retransmission: whenever the network drains without a
    // proof of convergence, every node re-broadcasts all its finite
    // departure labels (one sweep, <= km messages, stamped with a fresh
    // epoch).  Sweeps sent before the heal horizon recover what the fault
    // windows ate; the first post-heal sweep that improves nothing is the
    // loss-correct termination certificate (a global Bellman fixpoint).
    const double heal = faults->healed_after();
    while (true) {
      if (run.sweeps >= max_sweeps) {
        run.converged = false;
        break;
      }
      if (static_cast<double>(sim.rounds()) < heal) sim.tick();
      const double sent_at = static_cast<double>(sim.rounds());
      ++epoch;
      ++run.sweeps;
      // Each timeout-driven sweep is a child span of the run root (the
      // timeout fired, nothing in the network caused it); node rounds its
      // retransmissions wake parent under the sweep via the offer stamps.
      obs::CausalSpan sweep_span("dist.sweep", run_span.context());
      sweep_span.set_attributes(run.sweeps, epoch);
      for (std::uint32_t vi = 0; vi < net.num_nodes(); ++vi) {
        const GadgetState& gadget = run.gadgets[vi];
        for (std::uint32_t y = 0; y < gadget.out_lambdas.size(); ++y) {
          if (gadget.dist_y[y] < kInfiniteCost)
            broadcast_y(NodeId{vi}, y, sweep_span.context());
        }
      }
      const bool sweep_improved = drain();
      sweep_span.set_virtual_interval(sent_at,
                                      static_cast<double>(sim.rounds()));
      if (!sweep_improved && sent_at >= heal) break;
    }

    static obs::Counter& sweep_counter = obs::Registry::global().counter(
        "lumen.dist.faults.retransmit_sweeps");
    static obs::LatencyHistogram& recovery = obs::Registry::global().histogram(
        "lumen.dist.faults.recovery_rounds");
    sweep_counter.add(run.sweeps);
    if (run.converged && heal > 0.0 && std::isfinite(heal)) {
      const double rounds_now = static_cast<double>(sim.rounds());
      recovery.record(rounds_now > heal
                          ? static_cast<std::uint64_t>(rounds_now - heal)
                          : 0);
      // The recovery interval — heal horizon to quiescence — as a child
      // span of the run root, linked to the plan that triggered it via
      // the (seed, sweeps) attributes.
      obs::CausalSpan rec_span("dist.recovery", run_span.context());
      rec_span.set_virtual_interval(heal, rounds_now);
      rec_span.set_attributes(faults->seed(), run.sweeps);
    }

    // Replay the plan's fiber-cut windows as spans under the root, so the
    // assembled tree shows *why* sweeps were needed next to the sweeps
    // themselves.  Down events pair with the next up of the same span.
    const std::vector<SpanEvent> timeline = faults->span_timeline();
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      if (!timeline[i].down) continue;
      double up_at = heal;
      for (std::size_t j = i + 1; j < timeline.size(); ++j) {
        if (!timeline[j].down && timeline[j].a == timeline[i].a &&
            timeline[j].b == timeline[i].b) {
          up_at = timeline[j].time;
          break;
        }
      }
      obs::CausalSpan cut_span("fault.span_down", run_span.context());
      cut_span.set_node(timeline[i].a.value());
      cut_span.set_virtual_interval(timeline[i].time, up_at);
      cut_span.set_attributes(timeline[i].a.value(), timeline[i].b.value());
    }
  }

  run.messages = sim.total_messages();
  run.rounds = sim.rounds();
  run_span.set_virtual_interval(0.0, static_cast<double>(run.rounds));
  run_span.set_attributes(run.sweeps, run.converged ? 1 : 0);

  static obs::Counter& runs = obs::Registry::global().counter("lumen.dist.runs");
  static obs::Counter& messages =
      obs::Registry::global().counter("lumen.dist.messages");
  static obs::Counter& rounds =
      obs::Registry::global().counter("lumen.dist.rounds");
  runs.add();
  messages.add(run.messages);
  rounds.add(run.rounds);
  return run;
}

DistRouteResult readout(const WdmNetwork& net, const ProtocolRun& run,
                        NodeId s, NodeId t) {
  DistRouteResult result;
  result.messages = run.messages;
  result.rounds = run.rounds;
  result.retransmit_sweeps = run.sweeps;
  result.converged = run.converged;
  result.trace_id = run.trace_id;

  const GadgetState& sink = run.gadgets[t.value()];
  const std::uint32_t best_x = dist_detail::best_arrival(sink);
  if (best_x == kNoParent) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = sink.dist_x[best_x];
  result.path = dist_detail::trace_path(net, run.gadgets, s, t, best_x);
  return result;
}

}  // namespace

DistRouteResult distributed_route_semilightpath(const WdmNetwork& net,
                                                NodeId s, NodeId t) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  DistRouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }
  const ProtocolRun run = run_protocol(net, s, nullptr, 0);
  return readout(net, run, s, t);
}

DistRouteResult distributed_route_semilightpath(const WdmNetwork& net,
                                                NodeId s, NodeId t,
                                                FaultPlan& faults,
                                                std::uint32_t max_sweeps) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  DistRouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }
  const ProtocolRun run = run_protocol(net, s, &faults, max_sweeps);
  return readout(net, run, s, t);
}

DistAllPairsResult distributed_all_pairs(const WdmNetwork& net) {
  const std::uint32_t n = net.num_nodes();
  DistAllPairsResult result;
  result.cost.assign(n, std::vector<double>(n, 0.0));
  for (std::uint32_t si = 0; si < n; ++si) {
    // One protocol execution per source computes every destination's label.
    const ProtocolRun run = run_protocol(net, NodeId{si}, nullptr, 0);
    result.messages += run.messages;
    result.rounds += run.rounds;
    for (std::uint32_t ti = 0; ti < n; ++ti) {
      if (ti == si) continue;
      const GadgetState& sink = run.gadgets[ti];
      const std::uint32_t best_x = dist_detail::best_arrival(sink);
      result.cost[si][ti] =
          best_x == kNoParent ? kInfiniteCost : sink.dist_x[best_x];
    }
  }
  return result;
}

}  // namespace lumen
