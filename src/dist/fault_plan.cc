#include "dist/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "obs/registry.h"
#include "util/error.h"

namespace lumen {

namespace {

void require_probability(double p) { LUMEN_REQUIRE(p >= 0.0 && p <= 1.0); }

void require_window(double from, double until) {
  LUMEN_REQUIRE(from >= 0.0 && from <= until);
}

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

FaultPlan& FaultPlan::drop_messages(double p, double until) {
  require_probability(p);
  LUMEN_REQUIRE(until >= 0.0);
  drop_p_ = p;
  drop_until_ = until;
  return *this;
}

FaultPlan& FaultPlan::duplicate_messages(double p) {
  require_probability(p);
  dup_p_ = p;
  return *this;
}

FaultPlan& FaultPlan::delay_spikes(double p, double extra) {
  require_probability(p);
  LUMEN_REQUIRE(extra >= 0.0);
  spike_p_ = p;
  spike_extra_ = extra;
  return *this;
}

FaultPlan& FaultPlan::link_down(LinkId e, double from, double until) {
  require_window(from, until);
  link_downs_.push_back(LinkDown{e, Window{from, until}});
  return *this;
}

FaultPlan& FaultPlan::span_down(NodeId a, NodeId b, double from,
                                double until) {
  require_window(from, until);
  LUMEN_REQUIRE(a != b);
  span_downs_.push_back(SpanDown{a, b, Window{from, until}});
  return *this;
}

FaultPlan& FaultPlan::node_crash(NodeId v, double from, double until) {
  require_window(from, until);
  crashes_.push_back(Crash{v, Window{from, until}});
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<NodeId> side, double heal_at) {
  LUMEN_REQUIRE(heal_at >= 0.0);
  side_.clear();
  side_.reserve(side.size());
  for (const NodeId v : side) side_.push_back(v.value());
  std::sort(side_.begin(), side_.end());
  side_.erase(std::unique(side_.begin(), side_.end()), side_.end());
  partition_heal_ = heal_at;
  return *this;
}

bool FaultPlan::in_side(NodeId v) const {
  return std::binary_search(side_.begin(), side_.end(), v.value());
}

bool FaultPlan::crashed(NodeId v, double t) const {
  for (const Crash& c : crashes_) {
    if (c.node == v && c.window.contains(t)) return true;
  }
  return false;
}

FaultDecision FaultPlan::decide_send(NodeId tail, NodeId head, LinkId link,
                                     double send_time) {
  static obs::Counter& dropped =
      obs::Registry::global().counter("lumen.dist.faults.dropped");
  static obs::Counter& duplicated =
      obs::Registry::global().counter("lumen.dist.faults.duplicated");
  static obs::Counter& delayed =
      obs::Registry::global().counter("lumen.dist.faults.delayed");

  ++stats_.sends;
  FaultDecision decision;

  for (const LinkDown& d : link_downs_) {
    if (d.link == link && d.window.contains(send_time)) {
      ++stats_.dropped_link_down;
      dropped.add();
      decision.drop = true;
      return decision;
    }
  }
  for (const SpanDown& d : span_downs_) {
    const bool on_span = (tail == d.a && head == d.b) ||
                         (tail == d.b && head == d.a);
    if (on_span && d.window.contains(send_time)) {
      ++stats_.dropped_link_down;
      dropped.add();
      decision.drop = true;
      return decision;
    }
  }
  if (crashed(tail, send_time)) {
    ++stats_.dropped_crash;
    dropped.add();
    decision.drop = true;
    return decision;
  }
  if (!side_.empty() && send_time < partition_heal_ &&
      in_side(tail) != in_side(head)) {
    ++stats_.dropped_partition;
    dropped.add();
    decision.drop = true;
    return decision;
  }
  if (drop_p_ > 0.0 && send_time < drop_until_ && rng_.next_bool(drop_p_)) {
    ++stats_.dropped_random;
    dropped.add();
    decision.drop = true;
    return decision;
  }

  if (dup_p_ > 0.0 && rng_.next_bool(dup_p_)) {
    decision.copies = 2;
    ++stats_.duplicated;
    duplicated.add();
  }
  if (spike_p_ > 0.0 && rng_.next_bool(spike_p_)) {
    decision.extra_delay = spike_extra_;
    ++stats_.delayed;
    delayed.add();
  }
  return decision;
}

bool FaultPlan::deliverable(NodeId head, double delivery_time) {
  if (!crashed(head, delivery_time)) return true;
  static obs::Counter& dropped =
      obs::Registry::global().counter("lumen.dist.faults.dropped");
  ++stats_.dropped_crash;
  dropped.add();
  return false;
}

double FaultPlan::healed_after() const noexcept {
  double heal = 0.0;
  if (drop_p_ > 0.0) heal = std::max(heal, drop_until_);
  for (const LinkDown& d : link_downs_) heal = std::max(heal, d.window.until);
  for (const SpanDown& d : span_downs_) heal = std::max(heal, d.window.until);
  for (const Crash& c : crashes_) heal = std::max(heal, c.window.until);
  if (!side_.empty()) heal = std::max(heal, partition_heal_);
  return heal;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "seed=" << seed_;
  if (drop_p_ > 0.0) out << " drop(" << drop_p_ << ",<" << drop_until_ << ")";
  if (dup_p_ > 0.0) out << " dup(" << dup_p_ << ")";
  if (spike_p_ > 0.0)
    out << " spike(" << spike_p_ << ",+" << spike_extra_ << ")";
  for (const LinkDown& d : link_downs_) {
    out << " link_down(e" << d.link.value() << "@[" << d.window.from << ","
        << d.window.until << "))";
  }
  for (const SpanDown& d : span_downs_) {
    out << " span(" << d.a.value() << "-" << d.b.value() << "@["
        << d.window.from << "," << d.window.until << "))";
  }
  for (const Crash& c : crashes_) {
    out << " crash(n" << c.node.value() << "@[" << c.window.from << ","
        << c.window.until << "))";
  }
  if (!side_.empty()) {
    out << " partition(|side|=" << side_.size() << ",<" << partition_heal_
        << ")";
  }
  return out.str();
}

std::vector<SpanEvent> FaultPlan::span_timeline() const {
  std::vector<SpanEvent> events;
  events.reserve(2 * span_downs_.size());
  for (const SpanDown& d : span_downs_) {
    events.push_back(SpanEvent{d.a, d.b, d.window.from, /*down=*/true});
    events.push_back(SpanEvent{d.a, d.b, d.window.until, /*down=*/false});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanEvent& x, const SpanEvent& y) {
                     if (x.time != y.time) return x.time < y.time;
                     return x.down && !y.down;  // fail before repair on ties
                   });
  return events;
}

FaultPlan FaultPlan::random_plan(std::uint64_t seed, const Digraph& topology,
                                 double heal_at) {
  LUMEN_REQUIRE(heal_at > 0.0);
  // The rule-selection stream is independent of the plan's decision stream
  // (which is seeded from `seed` directly), so adding a rule kind here
  // never perturbs how an unrelated rule rolls its dice.
  Rng pick(seed ^ 0x5bf03635a1ce92d3ULL);
  FaultPlan plan(seed);

  bool any_drop_rule = false;
  if (pick.next_bool(0.7)) {
    plan.drop_messages(pick.next_double_in(0.05, 0.35), heal_at);
    any_drop_rule = true;
  }
  if (pick.next_bool(0.4)) {
    plan.duplicate_messages(pick.next_double_in(0.05, 0.3));
  }
  if (pick.next_bool(0.4)) {
    plan.delay_spikes(pick.next_double_in(0.1, 0.3),
                      static_cast<double>(pick.next_in(1, 3)));
  }
  if (topology.num_links() > 0 && pick.next_bool(0.5)) {
    const LinkId e{
        static_cast<std::uint32_t>(pick.next_below(topology.num_links()))};
    const double from = pick.next_double_in(0.0, heal_at / 2.0);
    plan.span_down(topology.tail(e), topology.head(e), from,
                   pick.next_double_in(from, heal_at));
    any_drop_rule = true;
  }
  if (topology.num_nodes() > 0 && pick.next_bool(0.3)) {
    const NodeId v{
        static_cast<std::uint32_t>(pick.next_below(topology.num_nodes()))};
    const double from = pick.next_double_in(0.0, heal_at / 2.0);
    plan.node_crash(v, from, pick.next_double_in(from, heal_at));
    any_drop_rule = true;
  }
  if (topology.num_nodes() > 1 && pick.next_bool(0.3)) {
    std::vector<NodeId> side;
    for (std::uint32_t v = 0; v < topology.num_nodes(); ++v) {
      if (pick.next_bool(0.5)) side.push_back(NodeId{v});
    }
    if (!side.empty() && side.size() < topology.num_nodes()) {
      plan.partition(std::move(side), pick.next_double_in(0.0, heal_at));
      any_drop_rule = true;
    }
  }
  if (!any_drop_rule) {
    // Never emit a no-op plan: fall back to a light random-drop rule.
    plan.drop_messages(pick.next_double_in(0.05, 0.2), heal_at);
  }
  return plan;
}

}  // namespace lumen
