#include "dist/diffusing_sssp.h"

#include <queue>
#include <vector>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "util/error.h"
#include "util/rng.h"

namespace lumen {

namespace {

/// One in-flight message: a basic distance offer traveling along `link`,
/// or its acknowledgement traveling back against it.
struct Event {
  double time;
  std::uint64_t seq;  // deterministic tie-break
  bool is_ack;
  LinkId link;
  double offer;  // basic messages only

  bool operator>(const Event& other) const noexcept {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct ProcessState {
  double dist = kInfiniteCost;
  LinkId parent;
  /// Outstanding basic messages this node has sent and not yet had acked.
  std::uint64_t deficit = 0;
  /// The deferred-ack engager link (valid while in the engager tree).
  LinkId engager;
};

}  // namespace

DiffusingSsspResult diffusing_sssp(const Digraph& g, NodeId source,
                                   std::uint64_t seed, double min_delay,
                                   double max_delay) {
  LUMEN_REQUIRE(source.value() < g.num_nodes());
  LUMEN_REQUIRE(min_delay > 0.0 && min_delay <= max_delay);

  DiffusingSsspResult result;
  std::vector<ProcessState> state(g.num_nodes());
  state[source.value()].dist = 0.0;

  Rng rng(seed);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;
  double now = 0.0;

  auto send_basic = [&](LinkId e, double offer) {
    queue.push(Event{now + rng.next_double_in(min_delay, max_delay), seq++,
                     false, e, offer});
    ++state[g.tail(e).value()].deficit;
  };
  auto send_ack = [&](LinkId e) {
    queue.push(Event{now + rng.next_double_in(min_delay, max_delay), seq++,
                     true, e, 0.0});
  };

  /// Broadcast improved distance over all usable out-links of v.
  auto broadcast = [&](NodeId v) {
    const double dv = state[v.value()].dist;
    for (const LinkId e : g.out_links(v)) {
      const double w = g.weight(e);
      if (w == kInfiniteCost) continue;
      send_basic(e, dv + w);
    }
  };

  /// Deficit of v dropped to zero: release the deferred engager ack (or,
  /// at the source, declare termination).
  auto maybe_collapse = [&](NodeId v) {
    ProcessState& ps = state[v.value()];
    if (ps.deficit != 0) return;
    if (v == source) {
      result.detected = true;
      result.detection_time = now;
      return;
    }
    if (ps.engager.valid()) {
      send_ack(ps.engager);
      ps.engager = LinkId::invalid();
    }
  };

  // The source engages itself and diffuses the first wave.
  broadcast(source);
  maybe_collapse(source);  // isolated source terminates immediately

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    now = event.time;

    if (event.is_ack) {
      ++result.ack_messages;
      const NodeId u = g.tail(event.link);
      ProcessState& ps = state[u.value()];
      LUMEN_ASSERT(ps.deficit > 0);
      --ps.deficit;
      maybe_collapse(u);
      continue;
    }

    ++result.basic_messages;
    result.quiescence_time = now;  // last basic delivery seen so far
    const NodeId v = g.head(event.link);
    ProcessState& ps = state[v.value()];

    const bool was_idle = !ps.engager.valid() && ps.deficit == 0;
    if (event.offer < ps.dist) {
      ps.dist = event.offer;
      ps.parent = event.link;
      broadcast(v);
    }

    if (v == source) {
      // The source never defers: it is the root of the engager tree.
      send_ack(event.link);
    } else if (was_idle) {
      // First engagement since idle: defer this ack until collapse.
      ps.engager = event.link;
      maybe_collapse(v);  // nothing sent -> ack right back
    } else {
      // Already active: acknowledge immediately (DS rule).
      send_ack(event.link);
    }
  }

  LUMEN_ASSERT(result.detected || g.out_links(source).empty());
  // DS guarantee: the source detects termination only after every basic
  // message has been delivered and acknowledged.
  LUMEN_ASSERT(result.detection_time >= result.quiescence_time);

  result.dist.reserve(g.num_nodes());
  result.parent_link.reserve(g.num_nodes());
  for (const ProcessState& ps : state) {
    result.dist.push_back(ps.dist);
    result.parent_link.push_back(ps.parent);
  }
  return result;
}

}  // namespace lumen
