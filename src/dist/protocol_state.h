// Shared per-node state of the distributed semilightpath protocol.
//
// Both schedules of the Theorem 3 protocol — the synchronous round-based
// one (dist_router) and the event-driven asynchronous one (async_router,
// matching Chandy–Misra's actual model) — relax the same embedded gadget
// labels; this header holds that common state and the traceback.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/trace_context.h"
#include "wdm/network.h"
#include "wdm/semilightpath.h"

namespace lumen::dist_detail {

/// An offer crossing a physical link: "you can arrive here on `lambda`
/// with accumulated cost `dist`" (link traversal already included).
///
/// `epoch` stamps which retransmission sweep produced the offer: 0 for the
/// original event-driven transmission, sweep number s >= 1 for the s-th
/// timeout-driven re-broadcast of the fault-hardened routers.  The min-fold
/// is idempotent, so stamping is not needed for correctness — it exists so
/// receivers can tell fresh information from retransmitted/duplicated
/// traffic, which the fault counters and tests account separately.
struct Offer {
  Wavelength lambda;
  double dist;
  std::uint32_t epoch = 0;
  /// Causal trace context of the span that sent the offer (the run root,
  /// a node-round span, or a retransmission sweep).  Receivers that
  /// improve a label parent their own span on it, which is what stitches
  /// the per-run span tree together.  Zero-initialized (and ignored) when
  /// the obs library is built with LUMEN_OBS_DISABLED.
  obs::TraceContext ctx;
};

inline constexpr std::uint32_t kNoParent =
    std::numeric_limits<std::uint32_t>::max();
/// parent_y value marking "seeded by the source terminal s'".
inline constexpr std::uint32_t kSourceParent = kNoParent - 1;

/// Per-physical-node gadget state: the embedded X_v / Y_v labels.
struct GadgetState {
  std::vector<Wavelength> in_lambdas;   // sorted Λ_in(v)
  std::vector<Wavelength> out_lambdas;  // sorted Λ_out(v)
  std::vector<double> dist_x;           // parallel to in_lambdas
  std::vector<LinkId> parent_x;         // physical link of the best offer
  std::vector<double> dist_y;           // parallel to out_lambdas
  std::vector<std::uint32_t> parent_y;  // index into in_lambdas, or sentinel

  [[nodiscard]] static std::uint32_t find(
      const std::vector<Wavelength>& sorted, Wavelength lambda) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), lambda);
    if (it != sorted.end() && *it == lambda)
      return static_cast<std::uint32_t>(it - sorted.begin());
    return kNoParent;
  }
};

/// Initializes one gadget per physical node with +inf labels.
[[nodiscard]] std::vector<GadgetState> make_gadgets(const WdmNetwork& net);

/// Sink readout at t: index of the cheapest arrival label, or kNoParent
/// when every label is +inf.
[[nodiscard]] std::uint32_t best_arrival(const GadgetState& sink);

/// Traceback over converged parent state (a deployment would run a
/// |P|-message traceback; asymptotically irrelevant).
[[nodiscard]] Semilightpath trace_path(
    const WdmNetwork& net, const std::vector<GadgetState>& gadgets, NodeId s,
    NodeId t, std::uint32_t best_x);

}  // namespace lumen::dist_detail
