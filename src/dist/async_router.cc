#include "dist/async_router.h"

#include <algorithm>
#include <cmath>

#include "dist/async_network.h"
#include "dist/protocol_state.h"
#include "graph/dijkstra.h"  // kInfiniteCost
#include "obs/registry.h"
#include "obs/trace_context.h"

namespace lumen {

namespace {

using dist_detail::GadgetState;
using dist_detail::kNoParent;
using dist_detail::kSourceParent;
using dist_detail::Offer;

}  // namespace

AsyncRouteResult async_route_semilightpath(const WdmNetwork& net, NodeId s,
                                           NodeId t, std::uint64_t seed,
                                           double min_delay,
                                           double max_delay) {
  AsyncOptions options;
  options.min_delay = min_delay;
  options.max_delay = max_delay;
  return async_route_semilightpath(net, s, t, seed, options);
}

AsyncRouteResult async_route_semilightpath(const WdmNetwork& net, NodeId s,
                                           NodeId t, std::uint64_t seed,
                                           const AsyncOptions& options) {
  LUMEN_REQUIRE(s.value() < net.num_nodes());
  LUMEN_REQUIRE(t.value() < net.num_nodes());
  AsyncRouteResult result;
  if (s == t) {
    result.found = true;
    result.cost = 0.0;
    return result;
  }

  std::vector<GadgetState> gadgets = dist_detail::make_gadgets(net);
  AsyncNetwork<Offer> sim(net.topology(), Rng(seed), options.min_delay,
                          options.max_delay);
  FaultPlan* faults = options.faults;
  if (faults != nullptr) sim.set_fault_plan(faults);
  const ConversionModel& conv = net.conversion();
  std::uint32_t epoch = 0;

  // Root span of the execution (ambient: nests under a caller's span if
  // one is installed).  Offers carry causal contexts descending from it.
  obs::CausalSpan run_span("dist.async.run");
  run_span.set_node(s.value());
  result.trace_id = run_span.trace_id();

  auto broadcast_y = [&](NodeId v, std::uint32_t y_index,
                         const obs::TraceContext& ctx) {
    const GadgetState& gadget = gadgets[v.value()];
    const Wavelength lambda = gadget.out_lambdas[y_index];
    const double dy = gadget.dist_y[y_index];
    for (const LinkId e : net.out_links(v)) {
      const double w = net.link_cost(e, lambda);
      if (w == kInfiniteCost) continue;
      sim.send(e, Offer{lambda, dy + w, epoch, ctx});
    }
  };

  // Source seeding: s' -> Y_s ties at distance 0.
  {
    GadgetState& source_gadget = gadgets[s.value()];
    for (std::uint32_t y = 0; y < source_gadget.out_lambdas.size(); ++y) {
      source_gadget.dist_y[y] = 0.0;
      source_gadget.parent_y[y] = kSourceParent;
      broadcast_y(s, y, run_span.context());
    }
  }

  static obs::Counter& stale_offers =
      obs::Registry::global().counter("lumen.dist.faults.stale_offers");
  static obs::Counter& redundant_retransmits =
      obs::Registry::global().counter(
          "lumen.dist.faults.redundant_retransmits");

  // Event loop: one delivery at a time, in global time order.  Each
  // delivery may improve one arrival label, whose gadget relaxation may
  // improve departure labels, each of which re-broadcasts.  Returns true
  // when any arrival label improved.
  auto drain = [&]() {
    bool improved = false;
    while (auto delivery = sim.next()) {
      const NodeId v = net.head(delivery->link);
      GadgetState& gadget = gadgets[v.value()];
      const Offer& offer = delivery->payload;
      const std::uint32_t x =
          GadgetState::find(gadget.in_lambdas, offer.lambda);
      LUMEN_ASSERT(x != kNoParent);
      if (offer.dist >= gadget.dist_x[x]) {  // stale offer
        if (faults != nullptr) {
          stale_offers.add();
          if (offer.epoch > 0) redundant_retransmits.add();
        }
        continue;
      }
      improved = true;
      gadget.dist_x[x] = offer.dist;
      gadget.parent_x[x] = delivery->link;

      // An improving delivery is one causal event: a point span at the
      // delivery's virtual time, child of whatever span sent the offer.
      obs::CausalSpan event_span("dist.node_event", offer.ctx);
      event_span.set_node(v.value());
      event_span.set_virtual_interval(sim.now(), sim.now());
      event_span.set_attributes(offer.lambda.value(), offer.epoch);

      const Wavelength from = gadget.in_lambdas[x];
      for (std::uint32_t y = 0; y < gadget.out_lambdas.size(); ++y) {
        const double c = conv.cost(v, from, gadget.out_lambdas[y]);
        if (c == kInfiniteCost) continue;
        if (offer.dist + c < gadget.dist_y[y]) {
          gadget.dist_y[y] = offer.dist + c;
          gadget.parent_y[y] = x;
          broadcast_y(v, y, event_span.context());
        }
      }
    }
    return improved;
  };

  (void)drain();

  if (faults != nullptr) {
    // Timeout-driven retransmission (see dist_router.cc for the scheme):
    // the timer fires `timeout` after the queue drains, jumps the virtual
    // clock, and every node re-broadcasts its finite departure labels.
    const double heal = faults->healed_after();
    const double timeout = options.retransmit_timeout > 0.0
                               ? options.retransmit_timeout
                               : std::max(options.max_delay, 1.0);
    while (true) {
      if (result.retransmit_sweeps >= options.max_sweeps) {
        result.converged = false;
        break;
      }
      if (sim.now() < heal) sim.advance_to(sim.now() + timeout);
      const double sent_at = sim.now();
      ++epoch;
      ++result.retransmit_sweeps;
      // Timeout-driven, so causally a child of the run root, not of any
      // message; deliveries it wakes parent under it via the offer stamps.
      obs::CausalSpan sweep_span("dist.sweep", run_span.context());
      sweep_span.set_attributes(result.retransmit_sweeps, epoch);
      for (std::uint32_t vi = 0; vi < net.num_nodes(); ++vi) {
        const GadgetState& gadget = gadgets[vi];
        for (std::uint32_t y = 0; y < gadget.out_lambdas.size(); ++y) {
          if (gadget.dist_y[y] < kInfiniteCost)
            broadcast_y(NodeId{vi}, y, sweep_span.context());
        }
      }
      const bool sweep_improved = drain();
      sweep_span.set_virtual_interval(sent_at, sim.now());
      if (!sweep_improved && sent_at >= heal) break;
    }

    static obs::Counter& sweep_counter = obs::Registry::global().counter(
        "lumen.dist.faults.retransmit_sweeps");
    static obs::LatencyHistogram& recovery = obs::Registry::global().histogram(
        "lumen.dist.faults.recovery_vtime");
    sweep_counter.add(result.retransmit_sweeps);
    if (result.converged && heal > 0.0 && std::isfinite(heal)) {
      // Virtual time units recorded as histogram "seconds".
      recovery.record_seconds(std::max(0.0, sim.now() - heal));
      obs::CausalSpan rec_span("dist.recovery", run_span.context());
      rec_span.set_virtual_interval(heal, sim.now());
      rec_span.set_attributes(faults->seed(), result.retransmit_sweeps);
    }
  }

  result.messages = sim.total_messages();
  result.virtual_time = sim.now();
  run_span.set_virtual_interval(0.0, sim.now());
  run_span.set_attributes(result.retransmit_sweeps,
                          result.converged ? 1 : 0);

  static obs::Counter& runs =
      obs::Registry::global().counter("lumen.dist.async.runs");
  static obs::Counter& messages =
      obs::Registry::global().counter("lumen.dist.async.messages");
  static obs::LatencyHistogram& per_run =
      obs::Registry::global().histogram("lumen.dist.async.messages_per_run");
  runs.add();
  messages.add(result.messages);
  per_run.record(result.messages);

  result.node_costs.assign(net.num_nodes(), kInfiniteCost);
  result.node_costs[s.value()] = 0.0;
  for (std::uint32_t vi = 0; vi < net.num_nodes(); ++vi) {
    if (vi == s.value()) continue;
    const std::uint32_t best = dist_detail::best_arrival(gadgets[vi]);
    if (best != kNoParent) result.node_costs[vi] = gadgets[vi].dist_x[best];
  }

  const GadgetState& sink = gadgets[t.value()];
  const std::uint32_t best_x = dist_detail::best_arrival(sink);
  if (best_x == kNoParent) {
    result.found = false;
    result.cost = kInfiniteCost;
    return result;
  }
  result.found = true;
  result.cost = sink.dist_x[best_x];
  result.path = dist_detail::trace_path(net, gadgets, s, t, best_x);
  return result;
}

}  // namespace lumen
