// Value types shared across the sharded multi-tenant routing service.
//
// The service partitions the SESSION space: every shard owns a disjoint
// slice of the session table and a full RouteEngine replica of the
// topology, while the (link, wavelength) resource space stays global
// behind the atomic SlotTable (see slot_table.h).  These types name the
// pieces that cross those boundaries.
#pragma once

#include <cstdint>

#include "util/strong_id.h"

namespace lumen::svc {

struct TenantTag {};
/// Identifier of a service tenant (dense: 0 .. num_tenants-1).
using TenantId = StrongId<TenantTag>;

/// Identifier of a service session: shard index in the top 16 bits, the
/// shard's local sequence number (starting at 1) in the low 48.  The zero
/// word is the invalid sentinel — and doubles as the SlotTable's "free"
/// owner, so a valid session id can own slots directly by its bits.
class SvcSessionId {
 public:
  constexpr SvcSessionId() = default;

  [[nodiscard]] static constexpr SvcSessionId make(std::uint32_t shard,
                                                   std::uint64_t seq) noexcept {
    return SvcSessionId((static_cast<std::uint64_t>(shard) << kShardShift) |
                        (seq & kSeqMask));
  }
  [[nodiscard]] static constexpr SvcSessionId from_bits(
      std::uint64_t bits) noexcept {
    return SvcSessionId(bits);
  }

  [[nodiscard]] constexpr std::uint32_t shard() const noexcept {
    return static_cast<std::uint32_t>(bits_ >> kShardShift);
  }
  [[nodiscard]] constexpr std::uint64_t seq() const noexcept {
    return bits_ & kSeqMask;
  }
  /// The raw word (what the SlotTable stores as the owner).
  [[nodiscard]] constexpr std::uint64_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return bits_ != 0; }

  friend constexpr auto operator<=>(SvcSessionId, SvcSessionId) noexcept =
      default;

 private:
  static constexpr unsigned kShardShift = 48;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 48) - 1;

  constexpr explicit SvcSessionId(std::uint64_t bits) noexcept : bits_(bits) {}

  std::uint64_t bits_ = 0;
};

/// Outcome class of an admission attempt.
enum class AdmitStatus : std::uint8_t {
  kAdmitted,     ///< routed and committed; the ticket id is live
  kBlocked,      ///< no route on the shard's residual view
  kQuotaDenied,  ///< the tenant is at its active-session quota
  kAborted,      ///< every commit attempt lost a slot race (rare; retry)
};

[[nodiscard]] constexpr const char* admit_status_name(
    AdmitStatus status) noexcept {
  switch (status) {
    case AdmitStatus::kAdmitted: return "admitted";
    case AdmitStatus::kBlocked: return "blocked";
    case AdmitStatus::kQuotaDenied: return "quota_denied";
    case AdmitStatus::kAborted: return "aborted";
  }
  return "unknown";
}

/// What RoutingService::open hands back.
struct AdmitTicket {
  AdmitStatus status = AdmitStatus::kBlocked;
  SvcSessionId id;  ///< valid only when admitted
  double cost = 0.0;
  std::uint32_t hops = 0;
  /// Commit attempts that lost a slot race before the final outcome.
  std::uint32_t conflicts = 0;
};

/// Aggregate service accounting (see RoutingService::stats()).  Counted
/// with plain atomics so it is exact even under LUMEN_OBS_DISABLED.
struct ServiceStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t quota_denied = 0;
  std::uint64_t aborted = 0;
  std::uint64_t released = 0;
  std::uint64_t commit_conflicts = 0;
  std::uint64_t cross_shard_patches = 0;
  std::uint64_t active = 0;
};

/// Per-tenant accounting (see RoutingService::tenant_stats()).
struct TenantStats {
  std::uint64_t quota = 0;
  std::uint64_t active = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t quota_denied = 0;
  std::uint64_t released = 0;
};

}  // namespace lumen::svc
