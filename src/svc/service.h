// The sharded multi-tenant routing service front-end.
//
// RoutingService is the concurrent counterpart of SessionManager: many
// threads call open()/close() at once, sessions land on shards
// round-robin, each shard routes on its own RouteEngine replica, and
// every commit is arbitrated by the global atomic SlotTable (slot
// ownership can never be double-booked — see slot_table.h).  Multi-
// tenancy is an admission-control layer in front of the shards: each
// tenant has an active-session quota enforced with an optimistic
// fetch_add (in-flight admissions count against the quota, so a tenant
// can never exceed it even transiently), plus fairness counters.
//
// Observability: `lumen.svc.*` counters for every admission outcome,
// an active-session gauge, and admit/close latency histograms, with
// default_slo_rules() providing the p99-admit-latency and abort-rate
// watchdog thresholds.  All accounting is mirrored in plain atomics so
// stats() stays exact under LUMEN_OBS_DISABLED.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/route_engine.h"
#include "obs/slo.h"
#include "svc/shard.h"
#include "svc/slot_table.h"
#include "svc/types.h"
#include "wdm/network.h"

namespace lumen::svc {

struct ServiceOptions {
  /// Session-space partitions (each owns a full RouteEngine replica).
  std::uint32_t num_shards = 4;
  /// Tenants known to the service (TenantId 0 .. num_tenants-1).
  std::uint32_t num_tenants = 1;
  /// Default per-tenant active-session quota (UINT64_MAX = unlimited;
  /// override per tenant with set_quota).
  std::uint64_t default_quota = UINT64_MAX;
  /// Commit attempts per admission before kAborted.
  std::uint32_t max_commit_retries = 4;
  /// Replica build configuration (CH + ALT flags live here).
  RouteEngine::Options engine{};
  /// Per-query configuration for every admission route.
  RouteEngine::QueryOptions query{.goal_directed = true};
  /// Record every commit/release in the CommitLog (the linearizability
  /// harness turns this on; costs one fetch_add + locked append per op).
  bool record_commit_log = false;
};

/// See file comment.
class RoutingService {
 public:
  /// Builds num_shards replicas of `net` (the dominant construction
  /// cost) and the slot table.  The network itself is not retained.
  RoutingService(const WdmNetwork& net, const ServiceOptions& options);

  /// Routes and commits one session for `tenant`.  Thread-safe.
  [[nodiscard]] AdmitTicket open(TenantId tenant, NodeId source,
                                 NodeId target);

  /// Admits a whole demand batch for `tenant` in one shard visit: quota
  /// is claimed per demand up front (over-quota demands get
  /// kQuotaDenied), the survivors go to one round-robin-chosen shard
  /// whose admit_batch bulk pre-costs them with lane-packed sweeps,
  /// blocks the unroutable ones without individual searches, and offers
  /// the rest cheapest-first under a single mutex acquisition; all
  /// admitted slots are broadcast to peer shards as one re-sync note
  /// batch.  Tickets are returned in input order.  Thread-safe, and the
  /// per-demand accounting (offered/admitted/blocked/aborted, tenant
  /// splits) matches what the same demands would record through open();
  /// admit latency is recorded once per demand as the batch mean.
  [[nodiscard]] std::vector<AdmitTicket> open_batch(
      TenantId tenant, std::span<const std::pair<NodeId, NodeId>> demands);

  /// Releases an admitted session.  False when the id is unknown or
  /// already closed.  Thread-safe.
  bool close(SvcSessionId id);

  /// Sets a tenant's active-session quota (takes effect for future
  /// admissions; sessions already active are never evicted).
  void set_quota(TenantId tenant, std::uint64_t max_active);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] TenantStats tenant_stats(TenantId tenant) const;
  [[nodiscard]] std::uint64_t active_sessions() const {
    return stats_active_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const SlotTable& slot_table() const noexcept { return table_; }
  [[nodiscard]] CommitLog& commit_log() noexcept { return log_; }

  /// Applies every pending cross-shard re-sync note now (tests quiesce
  /// with this before asserting on replica-visible state).
  void drain_all();

  /// (owner bits, claimed slots) of every live session across all
  /// shards — the double-booking audit surface.  Quiesce for exactness.
  [[nodiscard]] std::vector<std::pair<std::uint64_t,
                                      std::vector<std::uint32_t>>>
  active_reservations() const;

  /// Watchdog rules for the service instruments: p99 admit latency over
  /// `p99_admit_ns` nanoseconds, and per-window abort and quota-denial
  /// pressure.  Feed to an obs::SloWatchdog.
  [[nodiscard]] static std::vector<obs::SloRule> default_slo_rules(
      double p99_admit_ns = 5e6);

 private:
  struct TenantState {
    std::atomic<std::uint64_t> quota{UINT64_MAX};
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> blocked{0};
    std::atomic<std::uint64_t> quota_denied{0};
    std::atomic<std::uint64_t> released{0};
  };

  /// Broadcasts freshly (un)claimed slots to every shard except `from`.
  void broadcast(std::uint32_t from,
                 std::span<const std::uint32_t> slots);

  ServiceOptions options_;
  SlotTable table_;
  CommitLog log_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<TenantState[]> tenants_;
  std::atomic<std::uint32_t> round_robin_{0};

  // Exact accounting (obs counters mirror these when compiled in).
  std::atomic<std::uint64_t> stats_offered_{0};
  std::atomic<std::uint64_t> stats_admitted_{0};
  std::atomic<std::uint64_t> stats_blocked_{0};
  std::atomic<std::uint64_t> stats_quota_denied_{0};
  std::atomic<std::uint64_t> stats_aborted_{0};
  std::atomic<std::uint64_t> stats_released_{0};
  std::atomic<std::uint64_t> stats_conflicts_{0};
  std::atomic<std::uint64_t> stats_patches_{0};
  std::atomic<std::uint64_t> stats_active_{0};
};

}  // namespace lumen::svc
