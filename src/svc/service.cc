#include "svc/service.h"

#include <chrono>
#include <iterator>

#include "obs/registry.h"
#include "obs/trace_context.h"
#include "util/error.h"

namespace lumen::svc {
namespace {

/// Call-site instrument cache (one registry lookup per process).  The
/// labeled families carry the per-tenant admission split (dimensional
/// children of the same-named plain instruments) and the per-shard
/// contention split; children are created lazily on first touch.
struct Instruments {
  obs::Counter& offered;
  obs::Counter& admitted;
  obs::Counter& blocked;
  obs::Counter& quota_denied;
  obs::Counter& aborted;
  obs::Counter& released;
  obs::Counter& conflicts;
  obs::Counter& resync_patches;
  obs::Gauge& active;
  obs::LatencyHistogram& admit_latency;
  obs::LatencyHistogram& close_latency;
  obs::LabeledFamily<obs::Counter>& admitted_by_tenant;
  obs::LabeledFamily<obs::Counter>& blocked_by_tenant;
  obs::LabeledFamily<obs::Counter>& quota_denied_by_tenant;
  obs::LabeledFamily<obs::LatencyHistogram>& admit_latency_by_tenant;
  obs::LabeledFamily<obs::Counter>& conflicts_by_shard;
  obs::LabeledFamily<obs::Counter>& patches_by_shard;

  static Instruments& get() {
    static Instruments instance{
        obs::Registry::global().counter("lumen.svc.offered"),
        obs::Registry::global().counter("lumen.svc.admitted"),
        obs::Registry::global().counter("lumen.svc.blocked"),
        obs::Registry::global().counter("lumen.svc.quota_denied"),
        obs::Registry::global().counter("lumen.svc.aborted"),
        obs::Registry::global().counter("lumen.svc.released"),
        obs::Registry::global().counter("lumen.svc.commit_conflicts"),
        obs::Registry::global().counter("lumen.svc.resync_patches"),
        obs::Registry::global().gauge("lumen.svc.active_sessions"),
        obs::Registry::global().histogram("lumen.svc.admit_latency_ns"),
        obs::Registry::global().histogram("lumen.svc.close_latency_ns"),
        obs::Registry::global().labeled_counter("lumen.svc.admitted"),
        obs::Registry::global().labeled_counter("lumen.svc.blocked"),
        obs::Registry::global().labeled_counter("lumen.svc.quota_denied"),
        obs::Registry::global().labeled_histogram(
            "lumen.svc.admit_latency_ns"),
        obs::Registry::global().labeled_counter("lumen.svc.commit_conflicts"),
        obs::Registry::global().labeled_counter("lumen.svc.resync_patches"),
    };
    return instance;
  }
};

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RoutingService::RoutingService(const WdmNetwork& net,
                               const ServiceOptions& options)
    : options_(options), table_(net) {
  LUMEN_REQUIRE(options_.num_shards >= 1 && options_.num_shards <= 0xffff);
  LUMEN_REQUIRE(options_.num_tenants >= 1);
  if (options_.record_commit_log) log_.enable();

  Shard::Options shard_options;
  shard_options.engine = options_.engine;
  shard_options.query = options_.query;
  shard_options.max_commit_retries = options_.max_commit_retries;
  shards_.reserve(options_.num_shards);
  for (std::uint32_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, net, &table_, &log_, shard_options));
  }

  tenants_ = std::make_unique<TenantState[]>(options_.num_tenants);
  for (std::uint32_t t = 0; t < options_.num_tenants; ++t) {
    tenants_[t].quota.store(options_.default_quota,
                            std::memory_order_relaxed);
  }
}

void RoutingService::broadcast(std::uint32_t from,
                               std::span<const std::uint32_t> slots) {
  if (slots.empty() || shards_.size() < 2) return;
  for (const auto& shard : shards_) {
    if (shard->index() == from) continue;
    shard->push_resync(slots);
  }
  const std::uint64_t notes =
      slots.size() * (shards_.size() - 1);
  stats_patches_.fetch_add(notes, std::memory_order_relaxed);
  Instruments& ins = Instruments::get();
  ins.resync_patches.add(notes);
  ins.patches_by_shard.at(obs::TagSet{}.shard(from)).add(notes);
}

AdmitTicket RoutingService::open(TenantId tenant, NodeId source,
                                 NodeId target) {
  LUMEN_REQUIRE(tenant.value() < options_.num_tenants);
  Instruments& ins = Instruments::get();
  // The ambient admit span: every sub-span (svc.route, svc.commit) and
  // the latency exemplar recorded below share its trace id, so a breach
  // dump can resolve the exemplar back to the full admit chain.
  obs::CausalSpan span("svc.admit");
  const obs::TagSet tenant_tags = obs::TagSet{}.tenant(tenant.value());
  const auto start = std::chrono::steady_clock::now();
  stats_offered_.fetch_add(1, std::memory_order_relaxed);
  ins.offered.add();

  TenantState& state = tenants_[tenant.value()];
  // Optimistic quota claim: in-flight admissions count, so the quota is
  // never exceeded even transiently (a failed admission refunds below).
  const std::uint64_t prior =
      state.active.fetch_add(1, std::memory_order_acq_rel);
  if (prior >= state.quota.load(std::memory_order_acquire)) {
    state.active.fetch_sub(1, std::memory_order_acq_rel);
    state.quota_denied.fetch_add(1, std::memory_order_relaxed);
    stats_quota_denied_.fetch_add(1, std::memory_order_relaxed);
    ins.quota_denied.add();
    ins.quota_denied_by_tenant.at(tenant_tags).add();
    const double secs = seconds_since(start);
    ins.admit_latency.record_seconds(secs, span.trace_id());
    ins.admit_latency_by_tenant.at(tenant_tags)
        .record_seconds(secs, span.trace_id());
    AdmitTicket ticket;
    ticket.status = AdmitStatus::kQuotaDenied;
    return ticket;
  }

  const std::uint32_t shard_index =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % num_shards();
  Shard::AdmitOutcome outcome =
      shards_[shard_index]->admit(tenant, source, target);

  if (outcome.ticket.conflicts > 0) {
    stats_conflicts_.fetch_add(outcome.ticket.conflicts,
                               std::memory_order_relaxed);
    ins.conflicts.add(outcome.ticket.conflicts);
    ins.conflicts_by_shard.at(obs::TagSet{}.shard(shard_index))
        .add(outcome.ticket.conflicts);
  }

  if (outcome.ticket.status == AdmitStatus::kAdmitted) {
    broadcast(shard_index, outcome.slots);
    state.admitted.fetch_add(1, std::memory_order_relaxed);
    stats_admitted_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t active =
        stats_active_.fetch_add(1, std::memory_order_acq_rel) + 1;
    ins.admitted.add();
    ins.admitted_by_tenant.at(tenant_tags).add();
    ins.active.set(static_cast<double>(active));
  } else {
    state.active.fetch_sub(1, std::memory_order_acq_rel);
    if (outcome.ticket.status == AdmitStatus::kBlocked) {
      state.blocked.fetch_add(1, std::memory_order_relaxed);
      stats_blocked_.fetch_add(1, std::memory_order_relaxed);
      ins.blocked.add();
      ins.blocked_by_tenant.at(tenant_tags).add();
    } else {
      stats_aborted_.fetch_add(1, std::memory_order_relaxed);
      ins.aborted.add();
    }
  }
  const double secs = seconds_since(start);
  ins.admit_latency.record_seconds(secs, span.trace_id());
  ins.admit_latency_by_tenant.at(tenant_tags)
      .record_seconds(secs, span.trace_id());
  return outcome.ticket;
}

std::vector<AdmitTicket> RoutingService::open_batch(
    TenantId tenant, std::span<const std::pair<NodeId, NodeId>> demands) {
  LUMEN_REQUIRE(tenant.value() < options_.num_tenants);
  std::vector<AdmitTicket> tickets(demands.size());
  if (demands.empty()) return tickets;
  Instruments& ins = Instruments::get();
  // One ambient span covers the whole batch; the shard's svc.route /
  // svc.commit sub-spans nest under it as usual.
  obs::CausalSpan span("svc.admit");
  const obs::TagSet tenant_tags = obs::TagSet{}.tenant(tenant.value());
  const auto start = std::chrono::steady_clock::now();
  stats_offered_.fetch_add(demands.size(), std::memory_order_relaxed);
  ins.offered.add(demands.size());

  // Optimistic per-demand quota claims, exactly as open() makes them:
  // the whole batch counts in-flight, over-quota demands refund at once.
  TenantState& state = tenants_[tenant.value()];
  std::vector<std::pair<NodeId, NodeId>> accepted;
  std::vector<std::size_t> accepted_index;
  accepted.reserve(demands.size());
  accepted_index.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const std::uint64_t prior =
        state.active.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= state.quota.load(std::memory_order_acquire)) {
      state.active.fetch_sub(1, std::memory_order_acq_rel);
      state.quota_denied.fetch_add(1, std::memory_order_relaxed);
      stats_quota_denied_.fetch_add(1, std::memory_order_relaxed);
      ins.quota_denied.add();
      ins.quota_denied_by_tenant.at(tenant_tags).add();
      tickets[i].status = AdmitStatus::kQuotaDenied;
    } else {
      accepted.push_back(demands[i]);
      accepted_index.push_back(i);
    }
  }

  const std::uint32_t shard_index =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % num_shards();
  std::vector<Shard::AdmitOutcome> outcomes;
  if (!accepted.empty()) {
    outcomes = shards_[shard_index]->admit_batch(tenant, accepted);
  }

  std::vector<std::uint32_t> claimed;  // all admitted slots, one broadcast
  std::uint64_t admitted = 0;
  for (std::size_t j = 0; j < outcomes.size(); ++j) {
    Shard::AdmitOutcome& outcome = outcomes[j];
    tickets[accepted_index[j]] = outcome.ticket;
    if (outcome.ticket.conflicts > 0) {
      stats_conflicts_.fetch_add(outcome.ticket.conflicts,
                                 std::memory_order_relaxed);
      ins.conflicts.add(outcome.ticket.conflicts);
      ins.conflicts_by_shard.at(obs::TagSet{}.shard(shard_index))
          .add(outcome.ticket.conflicts);
    }
    if (outcome.ticket.status == AdmitStatus::kAdmitted) {
      ++admitted;
      claimed.insert(claimed.end(), outcome.slots.begin(),
                     outcome.slots.end());
      state.admitted.fetch_add(1, std::memory_order_relaxed);
      stats_admitted_.fetch_add(1, std::memory_order_relaxed);
      ins.admitted.add();
      ins.admitted_by_tenant.at(tenant_tags).add();
    } else {
      state.active.fetch_sub(1, std::memory_order_acq_rel);
      if (outcome.ticket.status == AdmitStatus::kBlocked) {
        state.blocked.fetch_add(1, std::memory_order_relaxed);
        stats_blocked_.fetch_add(1, std::memory_order_relaxed);
        ins.blocked.add();
        ins.blocked_by_tenant.at(tenant_tags).add();
      } else {
        stats_aborted_.fetch_add(1, std::memory_order_relaxed);
        ins.aborted.add();
      }
    }
  }
  broadcast(shard_index, claimed);
  const std::uint64_t active =
      stats_active_.fetch_add(admitted, std::memory_order_acq_rel) + admitted;
  ins.active.set(static_cast<double>(active));

  const double mean_secs =
      seconds_since(start) / static_cast<double>(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    ins.admit_latency.record_seconds(mean_secs, span.trace_id());
    ins.admit_latency_by_tenant.at(tenant_tags)
        .record_seconds(mean_secs, span.trace_id());
  }
  return tickets;
}

bool RoutingService::close(SvcSessionId id) {
  if (!id.valid() || id.shard() >= num_shards()) return false;
  Instruments& ins = Instruments::get();
  const auto start = std::chrono::steady_clock::now();

  Shard::CloseOutcome outcome = shards_[id.shard()]->close(id.seq());
  if (!outcome.ok) return false;

  broadcast(id.shard(), outcome.slots);
  tenants_[outcome.tenant.value()].active.fetch_sub(
      1, std::memory_order_acq_rel);
  tenants_[outcome.tenant.value()].released.fetch_add(
      1, std::memory_order_relaxed);
  stats_released_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t active =
      stats_active_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  ins.released.add();
  ins.active.set(static_cast<double>(active));
  ins.close_latency.record_seconds(seconds_since(start));
  return true;
}

void RoutingService::set_quota(TenantId tenant, std::uint64_t max_active) {
  LUMEN_REQUIRE(tenant.value() < options_.num_tenants);
  tenants_[tenant.value()].quota.store(max_active,
                                       std::memory_order_release);
}

ServiceStats RoutingService::stats() const {
  ServiceStats out;
  out.offered = stats_offered_.load(std::memory_order_relaxed);
  out.admitted = stats_admitted_.load(std::memory_order_relaxed);
  out.blocked = stats_blocked_.load(std::memory_order_relaxed);
  out.quota_denied = stats_quota_denied_.load(std::memory_order_relaxed);
  out.aborted = stats_aborted_.load(std::memory_order_relaxed);
  out.released = stats_released_.load(std::memory_order_relaxed);
  out.commit_conflicts = stats_conflicts_.load(std::memory_order_relaxed);
  out.cross_shard_patches = stats_patches_.load(std::memory_order_relaxed);
  out.active = stats_active_.load(std::memory_order_relaxed);
  return out;
}

TenantStats RoutingService::tenant_stats(TenantId tenant) const {
  LUMEN_REQUIRE(tenant.value() < options_.num_tenants);
  const TenantState& state = tenants_[tenant.value()];
  TenantStats out;
  out.quota = state.quota.load(std::memory_order_relaxed);
  out.active = state.active.load(std::memory_order_relaxed);
  out.admitted = state.admitted.load(std::memory_order_relaxed);
  out.blocked = state.blocked.load(std::memory_order_relaxed);
  out.quota_denied = state.quota_denied.load(std::memory_order_relaxed);
  out.released = state.released.load(std::memory_order_relaxed);
  return out;
}

void RoutingService::drain_all() {
  for (const auto& shard : shards_) shard->drain();
}

std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>>
RoutingService::active_reservations() const {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>> out;
  for (const auto& shard : shards_) {
    auto slice = shard->session_slots();
    out.insert(out.end(), std::make_move_iterator(slice.begin()),
               std::make_move_iterator(slice.end()));
  }
  return out;
}

std::vector<obs::SloRule> RoutingService::default_slo_rules(
    double p99_admit_ns) {
  std::vector<obs::SloRule> rules;
  rules.push_back(obs::SloRule::percentile(
      "svc-admit-p99", "lumen.svc.admit_latency_ns", 0.99, p99_admit_ns));
  rules.push_back(obs::SloRule::ratio("svc-abort-rate", "lumen.svc.aborted",
                                      "lumen.svc.offered", 0.05));
  rules.push_back(obs::SloRule::ratio("svc-quota-pressure",
                                      "lumen.svc.quota_denied",
                                      "lumen.svc.offered", 0.5));
  return rules;
}

}  // namespace lumen::svc
