// One shard of the routing service: a RouteEngine replica plus the slice
// of the session table whose ids it minted.
//
// Concurrency model (striped mutex): every shard has one mutex guarding
// its engine replica and session table.  Service threads are routed to a
// shard per request, so with N shards up to N admissions proceed in
// parallel — each routing on its own replica, then committing against
// the global SlotTable with lock-free CAS.  Shards never take each
// other's mutexes; cross-shard effects travel as *slot re-sync notes*
// dropped into a peer's inbox (a plain vector behind its own tiny lock)
// and are applied at the peer's next convenience.
//
// Replica views are therefore eventually consistent, and deliberately
// self-correcting rather than carefully ordered: a re-sync note carries
// only a slot index, and applying it means reading the SlotTable truth
// *now* and setting the replica weight accordingly (owned → +inf, free →
// base cost).  Out-of-order delivery, duplicated notes, or a note raced
// by a concurrent commit all converge to the truth at the next touch.
// The table, never the replica, decides admission — a stale replica can
// only cause a commit conflict (retried after patching the conflicting
// slot) or a transiently pessimistic route.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/route_engine.h"
#include "svc/slot_table.h"
#include "svc/types.h"
#include "util/flat_map.h"

namespace lumen::svc {

/// See file comment.  Shards are created and wired by RoutingService;
/// the public methods are its internal API (exposed for the fuzz
/// harness, which drives shards through the service anyway).
class Shard {
 public:
  struct Options {
    RouteEngine::Options engine;
    RouteEngine::QueryOptions query;
    /// Commit attempts per admission before giving up (kAborted).  Each
    /// retry re-routes after patching the lost slot to +inf locally.
    std::uint32_t max_commit_retries = 4;
  };

  Shard(std::uint32_t index, const WdmNetwork& net, SlotTable* table,
        CommitLog* log, const Options& options);

  struct AdmitOutcome {
    AdmitTicket ticket;
    /// Slots claimed on success — the service broadcasts these to peer
    /// shards as re-sync notes.
    std::vector<std::uint32_t> slots;
  };

  /// Routes on the replica, two-phase-commits against the table.
  [[nodiscard]] AdmitOutcome admit(TenantId tenant, NodeId source,
                                   NodeId target);

  /// Admits a whole demand batch under ONE mutex acquisition.  The batch
  /// is first bulk pre-costed on the replica (RouteEngine::bulk_costs —
  /// lane-packed one-to-all sweeps when the replica carries a hierarchy,
  /// one flat run per distinct source otherwise): demands the replica
  /// prices at +inf are blocked without any further search (exactly what
  /// a per-demand admit would conclude), and the rest are offered
  /// cheapest-first, so under contention the resources go to the demands
  /// that use them best.  Outcomes are returned in input order.
  [[nodiscard]] std::vector<AdmitOutcome> admit_batch(
      TenantId tenant, std::span<const std::pair<NodeId, NodeId>> demands);

  struct CloseOutcome {
    bool ok = false;
    TenantId tenant;
    std::vector<std::uint32_t> slots;  ///< freed (broadcast as re-sync)
  };

  /// Releases the session minted as local sequence `seq`.
  [[nodiscard]] CloseOutcome close(std::uint64_t seq);

  /// Drops slot re-sync notes into the inbox (called by peers' service
  /// threads; never takes the shard mutex).
  void push_resync(std::span<const std::uint32_t> slots);

  /// Applies pending inbox notes and suspect re-verification now.
  /// admit() does this implicitly; tests and idle sweeps call it
  /// directly.
  void drain();

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t active() const;

  /// (owner bits, claimed slots) of every live session — the fuzz
  /// harness's double-booking audit.  Quiesce for exact answers.
  [[nodiscard]] std::vector<std::pair<std::uint64_t,
                                      std::vector<std::uint32_t>>>
  session_slots() const;

 private:
  struct Session {
    TenantId tenant;
    double cost = 0.0;
    std::vector<std::uint32_t> slots;
  };

  /// The route/claim/commit retry loop behind admit() and admit_batch()
  /// (mutex held, inbox drained, suspects re-verified by the caller).
  [[nodiscard]] AdmitOutcome admit_locked(TenantId tenant, NodeId source,
                                          NodeId target);
  /// Sets the replica weight of `slot` from the SlotTable truth.
  void resync_slot_locked(std::uint32_t slot);
  void drain_inbox_locked();
  /// Re-reads slots patched +inf on past conflicts; restores the ones
  /// whose owner rolled back without ever committing (no re-sync note is
  /// broadcast for an aborted two-phase claim, so this sweep is what
  /// keeps such slots from leaking out of the replica forever).
  void reverify_suspects_locked();

  const std::uint32_t index_;
  SlotTable* const table_;
  CommitLog* const log_;
  const Options options_;

  mutable std::mutex mutex_;  // guards engine_, sessions_, next_seq_, suspects_
  RouteEngine engine_;
  FlatMap<std::uint64_t, Session> sessions_;  // keyed by local seq
  std::uint64_t next_seq_ = 1;                // ids start at 1 (0 = free)
  std::vector<std::uint32_t> suspects_;

  std::mutex inbox_mutex_;
  std::vector<std::uint32_t> inbox_;
  /// Cheap empty-check so admits skip the inbox lock when idle.
  std::atomic<bool> inbox_nonempty_{false};
};

}  // namespace lumen::svc
