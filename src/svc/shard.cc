#include "svc/shard.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "graph/dijkstra.h"  // kInfiniteCost
#include "obs/trace_context.h"
#include "util/error.h"

namespace lumen::svc {

Shard::Shard(std::uint32_t index, const WdmNetwork& net, SlotTable* table,
             CommitLog* log, const Options& options)
    : index_(index),
      table_(table),
      log_(log),
      options_(options),
      engine_(net, options.engine) {
  LUMEN_REQUIRE(table_ != nullptr && log_ != nullptr);
  LUMEN_REQUIRE(options_.max_commit_retries >= 1);
}

void Shard::resync_slot_locked(std::uint32_t slot) {
  const std::uint64_t holder = table_->owner(slot);
  engine_.set_weight(table_->link_of(slot), table_->lambda_of(slot),
                     holder != 0 ? kInfiniteCost : table_->base_cost(slot));
}

void Shard::drain_inbox_locked() {
  if (!inbox_nonempty_.load(std::memory_order_acquire)) return;
  std::vector<std::uint32_t> notes;
  {
    const std::lock_guard<std::mutex> lock(inbox_mutex_);
    notes.swap(inbox_);
    inbox_nonempty_.store(false, std::memory_order_release);
  }
  for (const std::uint32_t slot : notes) resync_slot_locked(slot);
}

void Shard::reverify_suspects_locked() {
  std::size_t kept = 0;
  for (const std::uint32_t slot : suspects_) {
    resync_slot_locked(slot);
    if (table_->owner(slot) != 0) suspects_[kept++] = slot;
  }
  suspects_.resize(kept);
}

Shard::AdmitOutcome Shard::admit(TenantId tenant, NodeId source,
                                 NodeId target) {
  const std::lock_guard<std::mutex> lock(mutex_);
  drain_inbox_locked();
  reverify_suspects_locked();
  return admit_locked(tenant, source, target);
}

std::vector<Shard::AdmitOutcome> Shard::admit_batch(
    TenantId tenant, std::span<const std::pair<NodeId, NodeId>> demands) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AdmitOutcome> out(demands.size());
  if (demands.empty()) return out;
  drain_inbox_locked();
  reverify_suspects_locked();

  // Bulk pre-cost on the replica's current view: one lane per distinct
  // source instead of one point query per demand.  The costs decide only
  // the offer order and the +inf short-circuit; each surviving demand
  // still routes and commits through the ordinary retry loop (the
  // residual shifts as earlier demands in the batch claim slots).
  constexpr std::uint32_t kUnseen = 0xffffffffu;
  std::vector<std::uint32_t> src_row(engine_.num_nodes(), kUnseen);
  std::vector<NodeId> src_nodes;  // distinct sources, first-seen order
  for (const auto& [s, t] : demands) {
    (void)t;
    if (src_row[s.value()] == kUnseen) {
      src_row[s.value()] = static_cast<std::uint32_t>(src_nodes.size());
      src_nodes.push_back(s);
    }
  }
  const std::vector<std::vector<double>> rows =
      engine_.bulk_costs(src_nodes, /*threads=*/1, options_.query);

  std::vector<double> cost(demands.size());
  std::vector<std::size_t> offer;  // demands worth routing, by index
  offer.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    cost[i] = rows[src_row[demands[i].first.value()]]
                  [demands[i].second.value()];
    if (cost[i] == kInfiniteCost) {
      // Unroutable on the replica right now — admit_locked would run a
      // full search only to conclude the same kBlocked.  Claims by the
      // rest of the batch can only raise costs, so this cannot flip.
      out[i].ticket.status = AdmitStatus::kBlocked;
    } else {
      offer.push_back(i);
    }
  }
  // Cheapest-first (stable on ties): under contention the short, cheap
  // demands commit before expensive ones fragment the slot space.
  std::stable_sort(offer.begin(), offer.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a] < cost[b];
                   });
  for (const std::size_t i : offer) {
    out[i] = admit_locked(tenant, demands[i].first, demands[i].second);
  }
  return out;
}

Shard::AdmitOutcome Shard::admit_locked(TenantId tenant, NodeId source,
                                        NodeId target) {
  AdmitOutcome out;
  out.ticket.status = AdmitStatus::kBlocked;
  for (std::uint32_t attempt = 0; attempt < options_.max_commit_retries;
       ++attempt) {
    RouteResult route;
    {
      // Sub-span of the ambient svc.admit span: attributes route time to
      // its own profiler stage and trace node.
      obs::CausalSpan route_span("svc.route");
      route = engine_.route_semilightpath(source, target, options_.query);
    }
    if (!route.found) {
      out.ticket.status = AdmitStatus::kBlocked;
      return out;
    }

    std::vector<std::uint32_t> slots;
    slots.reserve(route.path.hops().size());
    for (const Hop& hop : route.path.hops()) {
      const std::uint32_t slot = table_->slot_of(hop.link, hop.wavelength);
      LUMEN_REQUIRE_MSG(slot != SlotTable::kInvalidSlot,
                        "routed over a wavelength outside the base network");
      slots.push_back(slot);
    }
    // Canonical claim order: sorted by slot index.  An optimal route
    // never traverses the same (link, λ) twice.
    std::sort(slots.begin(), slots.end());
    LUMEN_REQUIRE_MSG(
        std::adjacent_find(slots.begin(), slots.end()) == slots.end(),
        "route repeats a (link, wavelength) slot");

    const SvcSessionId id = SvcSessionId::make(index_, next_seq_);
    std::uint32_t conflict_pos = 0;
    // Covers the slot claims, commit-log append, and replica resyncs —
    // both the win and the conflict-retry path.
    obs::CausalSpan commit_span("svc.commit");
    if (!table_->claim_all(slots, id.bits(), &conflict_pos)) {
      // Lost a slot race to a concurrent commit.  Patch the replica with
      // the table truth for the contested slot, remember it as a suspect
      // (the winner may yet roll back and never broadcast), and re-route.
      ++out.ticket.conflicts;
      const std::uint32_t contested = slots[conflict_pos];
      resync_slot_locked(contested);
      suspects_.push_back(contested);
      out.ticket.status = AdmitStatus::kAborted;
      continue;
    }

    // Committed.  The log seq is drawn AFTER the claims (see slot_table.h
    // for why that ordering is the linearizability witness).
    if (log_->enabled()) {
      const std::uint64_t seq = log_->next_seq();
      log_->append(CommitRecord{seq, false, id.bits(), slots});
    }
    for (const std::uint32_t slot : slots) resync_slot_locked(slot);
    sessions_.try_emplace(next_seq_,
                          Session{tenant, route.cost, slots});
    ++next_seq_;

    out.ticket.status = AdmitStatus::kAdmitted;
    out.ticket.id = id;
    out.ticket.cost = route.cost;
    out.ticket.hops = static_cast<std::uint32_t>(slots.size());
    out.slots = std::move(slots);
    return out;
  }
  return out;  // every attempt lost its race: kAborted
}

Shard::CloseOutcome Shard::close(std::uint64_t seq) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(seq);
  if (it == sessions_.end()) return CloseOutcome{};

  const Session session = std::move(it->second);
  sessions_.erase(seq);
  const SvcSessionId id = SvcSessionId::make(index_, seq);

  // Release seq is drawn BEFORE the first slot is freed (slot_table.h).
  std::uint64_t log_seq = 0;
  const bool logging = log_->enabled();
  if (logging) log_seq = log_->next_seq();
  table_->release_all(session.slots, id.bits());
  if (logging) {
    log_->append(CommitRecord{log_seq, true, id.bits(), session.slots});
  }
  // Truth-based restore: a peer may already have re-claimed a slot.
  for (const std::uint32_t slot : session.slots) resync_slot_locked(slot);

  CloseOutcome out;
  out.ok = true;
  out.tenant = session.tenant;
  out.slots = session.slots;
  return out;
}

void Shard::push_resync(std::span<const std::uint32_t> slots) {
  if (slots.empty()) return;
  const std::lock_guard<std::mutex> lock(inbox_mutex_);
  inbox_.insert(inbox_.end(), slots.begin(), slots.end());
  inbox_nonempty_.store(true, std::memory_order_release);
}

void Shard::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  drain_inbox_locked();
  reverify_suspects_locked();
}

std::uint64_t Shard::active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>>
Shard::session_slots() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::vector<std::uint32_t>>> out;
  out.reserve(sessions_.size());
  for (const auto& [seq, session] : sessions_) {
    out.emplace_back(SvcSessionId::make(index_, seq).bits(), session.slots);
  }
  return out;
}

}  // namespace lumen::svc
