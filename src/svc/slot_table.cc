#include "svc/slot_table.h"

#include <algorithm>

#include "util/error.h"

namespace lumen::svc {

SlotTable::SlotTable(const WdmNetwork& net) {
  const std::uint32_t num_links = net.num_links();
  link_first_.resize(num_links + 1, 0);
  entries_.reserve(net.total_link_wavelengths());
  for (std::uint32_t e = 0; e < num_links; ++e) {
    link_first_[e] = static_cast<std::uint32_t>(entries_.size());
    for (const LinkWavelength& lw : net.available(LinkId(e))) {
      entries_.push_back(Entry{LinkId(e), lw.lambda, lw.cost});
    }
  }
  link_first_[num_links] = static_cast<std::uint32_t>(entries_.size());
  owners_ = std::make_unique<std::atomic<std::uint64_t>[]>(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    owners_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint32_t SlotTable::slot_of(LinkId e, Wavelength lambda) const {
  LUMEN_REQUIRE(e.value() + 1 < link_first_.size());
  const std::uint32_t first = link_first_[e.value()];
  const std::uint32_t last = link_first_[e.value() + 1];
  // Λ(e) snapshots sorted by wavelength (WdmNetwork::available contract).
  const auto begin = entries_.begin() + first;
  const auto end = entries_.begin() + last;
  const auto it = std::lower_bound(
      begin, end, lambda,
      [](const Entry& entry, Wavelength l) { return entry.lambda < l; });
  if (it == end || it->lambda != lambda) return kInvalidSlot;
  return static_cast<std::uint32_t>(it - entries_.begin());
}

bool SlotTable::try_claim(std::uint32_t slot, std::uint64_t owner_bits) {
  LUMEN_REQUIRE(slot < num_slots() && owner_bits != 0);
  std::uint64_t expected = 0;
  return owners_[slot].compare_exchange_strong(
      expected, owner_bits, std::memory_order_acq_rel,
      std::memory_order_acquire);
}

bool SlotTable::release(std::uint32_t slot, std::uint64_t owner_bits) {
  LUMEN_REQUIRE(slot < num_slots() && owner_bits != 0);
  std::uint64_t expected = owner_bits;
  return owners_[slot].compare_exchange_strong(
      expected, 0, std::memory_order_acq_rel, std::memory_order_acquire);
}

bool SlotTable::claim_all(std::span<const std::uint32_t> slots,
                          std::uint64_t owner_bits,
                          std::uint32_t* conflict_pos) {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (try_claim(slots[i], owner_bits)) continue;
    // Phase two: undo, leaving the table exactly as before the attempt.
    for (std::size_t j = 0; j < i; ++j) {
      const bool freed = release(slots[j], owner_bits);
      LUMEN_REQUIRE_MSG(freed, "rollback lost a slot it had claimed");
    }
    if (conflict_pos != nullptr) {
      *conflict_pos = static_cast<std::uint32_t>(i);
    }
    return false;
  }
  return true;
}

void SlotTable::release_all(std::span<const std::uint32_t> slots,
                            std::uint64_t owner_bits) {
  for (const std::uint32_t slot : slots) {
    const bool freed = release(slot, owner_bits);
    LUMEN_REQUIRE_MSG(freed, "released a slot the session did not hold");
  }
}

std::uint64_t SlotTable::occupied() const {
  std::uint64_t count = 0;
  for (std::uint32_t slot = 0; slot < num_slots(); ++slot) {
    if (owner(slot) != 0) ++count;
  }
  return count;
}

void CommitLog::append(CommitRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<CommitRecord> CommitLog::snapshot() const {
  std::vector<CommitRecord> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = records_;
  }
  std::sort(out.begin(), out.end(),
            [](const CommitRecord& a, const CommitRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

void CommitLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

}  // namespace lumen::svc
