// The global reservation authority of the sharded routing service.
//
// Shard replicas route on *views* of the residual availability that may
// lag; this table is the single source of truth.  Each (link, λ) pair of
// the base network gets one dense slot index and one atomic owner word:
// 0 = free, otherwise the SvcSessionId bits of the holder.  Admission
// commits by CAS-claiming every slot of the candidate route (two-phase:
// any lost CAS rolls back the slots already taken), so a wavelength can
// never be double-booked no matter how stale the routing view was — the
// worst a stale view costs is a retry.
//
// The attached CommitLog gives the fuzz harness its linearizability
// witness.  Sequence discipline (the whole argument):
//   * a COMMIT draws its seq AFTER the last of its slots is claimed;
//   * a RELEASE draws its seq BEFORE the first of its slots is freed.
// Seqs come from one atomic fetch_add, so they are totally ordered with
// the claims/frees themselves.  If commit C claims a slot freed by
// release R, the claim succeeded only after R's free, which happened
// only after R drew its seq — so seq(R) < seq(C).  Hence replaying the
// log serially in seq order into a fresh table can never conflict; if it
// does, the concurrent history had no linearization and the test fails.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "svc/types.h"
#include "util/strong_id.h"
#include "wdm/network.h"

namespace lumen::svc {

/// Dense atomic owner table over the base network's (link, λ) pairs.
class SlotTable {
 public:
  static constexpr std::uint32_t kInvalidSlot = UINT32_MAX;

  /// Snapshots the network's base availability (λ lists and costs).
  /// Structural changes to the network afterwards are not seen.
  explicit SlotTable(const WdmNetwork& net);

  [[nodiscard]] std::uint32_t num_slots() const noexcept {
    return static_cast<std::uint32_t>(entries_.size());
  }

  /// Dense slot of (e, λ); kInvalidSlot when λ ∉ base Λ(e).
  [[nodiscard]] std::uint32_t slot_of(LinkId e, Wavelength lambda) const;

  [[nodiscard]] LinkId link_of(std::uint32_t slot) const {
    return entries_[slot].link;
  }
  [[nodiscard]] Wavelength lambda_of(std::uint32_t slot) const {
    return entries_[slot].lambda;
  }
  /// Base traversal cost w(e, λ) — the weight a replica restores when the
  /// slot is observed free.
  [[nodiscard]] double base_cost(std::uint32_t slot) const {
    return entries_[slot].cost;
  }

  /// Current owner bits (0 = free).  A racing read, by design: replicas
  /// use it to re-sync their weight views toward the truth.
  [[nodiscard]] std::uint64_t owner(std::uint32_t slot) const {
    return owners_[slot].load(std::memory_order_acquire);
  }

  /// CAS free → owner.  False when the slot is held.
  bool try_claim(std::uint32_t slot, std::uint64_t owner_bits);

  /// CAS owner → free.  False (and no change) when `owner_bits` does not
  /// hold the slot — a protocol bug upstream, asserted by callers.
  bool release(std::uint32_t slot, std::uint64_t owner_bits);

  /// Two-phase claim of a route's slots, in the given order.  On the
  /// first lost CAS every slot already taken is rolled back and the index
  /// *into `slots`* of the conflict is written to `conflict_pos`.
  bool claim_all(std::span<const std::uint32_t> slots,
                 std::uint64_t owner_bits, std::uint32_t* conflict_pos);

  /// Frees all of a session's slots (each must be held by `owner_bits`).
  void release_all(std::span<const std::uint32_t> slots,
                   std::uint64_t owner_bits);

  /// Slots currently owned (test/ops scan; racy against live traffic —
  /// quiesce first for exact answers).
  [[nodiscard]] std::uint64_t occupied() const;

 private:
  struct Entry {
    LinkId link;
    Wavelength lambda;
    double cost;
  };

  std::vector<Entry> entries_;             // grouped by link, λ ascending
  std::vector<std::uint32_t> link_first_;  // per link: first slot index
  std::unique_ptr<std::atomic<std::uint64_t>[]> owners_;
};

/// One committed admission or release, for serial replay.
struct CommitRecord {
  std::uint64_t seq = 0;
  bool is_release = false;
  std::uint64_t owner = 0;                ///< SvcSessionId bits
  std::vector<std::uint32_t> slots;
};

/// Totally ordered commit/release log (see the file comment for the
/// sequence discipline that makes serial replay a linearizability
/// witness).  Disabled by default — the hot path then skips both the
/// fetch_add and the append.
class CommitLog {
 public:
  void enable() { enabled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Draws the next sequence number (callers obey the claim/free
  /// ordering discipline).
  [[nodiscard]] std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_acq_rel);
  }

  void append(CommitRecord record);

  /// All records so far, sorted by seq.
  [[nodiscard]] std::vector<CommitRecord> snapshot() const;

  void clear();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{1};
  mutable std::mutex mutex_;
  std::vector<CommitRecord> records_;
};

}  // namespace lumen::svc
