#include "util/table.h"

#include <cstdio>
#include <ostream>

#include "util/error.h"

namespace lumen {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LUMEN_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LUMEN_REQUIRE_MSG(cells.size() == headers_.size(),
                    "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };

  std::string out = emit_row(headers_);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out += std::string(widths[c] + 2, '-') + "|";
  out += "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void Table::print(std::ostream& os) const { os << to_markdown(); }

std::string fmt_double(double x, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, x);
  return buf;
}

std::string fmt_int(std::int64_t x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(x));
  return buf;
}

std::string fmt_sci(double x, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", decimals, x);
  return buf;
}

}  // namespace lumen
