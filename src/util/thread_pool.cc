#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace lumen {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // One claimer task per worker, each draining a shared atomic cursor.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const unsigned claimers =
      static_cast<unsigned>(std::min<std::size_t>(size(), count));
  for (unsigned w = 0; w < claimers; ++w) {
    submit([cursor, count, &fn] {
      for (std::size_t i = cursor->fetch_add(1); i < count;
           i = cursor->fetch_add(1)) {
        fn(i);
      }
    });
  }
  wait();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace lumen
