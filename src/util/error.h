// Contract checking and error reporting for the lumen library.
//
// All precondition violations throw lumen::Error so that misuse is caught
// early (Core Guidelines P.7) and is testable.  Internal invariants use
// LUMEN_ASSERT, which also throws (never aborts) so that property tests can
// exercise failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace lumen {

/// Exception thrown on precondition violations and unrecoverable errors
/// detected by the library.  The message always includes the failing
/// expression and its source location.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::string full(kind);
  full += " failed: ";
  full += expr;
  full += " at ";
  full += file;
  full += ":";
  full += std::to_string(line);
  if (!msg.empty()) {
    full += " — ";
    full += msg;
  }
  throw Error(full);
}
}  // namespace detail

/// Precondition check: use at public API boundaries.
#define LUMEN_REQUIRE(expr)                                               \
  do {                                                                    \
    if (!(expr))                                                          \
      ::lumen::detail::fail("precondition", #expr, __FILE__, __LINE__,   \
                            std::string{});                               \
  } while (0)

/// Precondition check with an explanatory message.
#define LUMEN_REQUIRE_MSG(expr, msg)                                      \
  do {                                                                    \
    if (!(expr))                                                          \
      ::lumen::detail::fail("precondition", #expr, __FILE__, __LINE__,   \
                            (msg));                                       \
  } while (0)

/// Internal invariant check: use inside implementations.
#define LUMEN_ASSERT(expr)                                                \
  do {                                                                    \
    if (!(expr))                                                          \
      ::lumen::detail::fail("invariant", #expr, __FILE__, __LINE__,      \
                            std::string{});                               \
  } while (0)

}  // namespace lumen
