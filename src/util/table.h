// Minimal table formatter for benchmark and example output.
//
// Benches print GitHub-flavoured markdown tables so EXPERIMENTS.md can quote
// their output verbatim; the same rows can be exported as CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lumen {

/// Collects rows of string cells and renders them as markdown or CSV.
/// Column count is fixed by the header; add_row checks arity.
class Table {
 public:
  /// Creates a table with the given column headers (must be non-empty).
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept {
    return headers_.size();
  }

  /// Renders as a markdown table with aligned columns.
  [[nodiscard]] std::string to_markdown() const;

  /// Renders as CSV (no quoting; cells must not contain commas or newlines).
  [[nodiscard]] std::string to_csv() const;

  /// Prints the markdown rendering to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting helpers used by bench output.
[[nodiscard]] std::string fmt_double(double x, int decimals = 3);
[[nodiscard]] std::string fmt_int(std::int64_t x);
/// Scientific-ish compact formatting, e.g. "1.25e+06".
[[nodiscard]] std::string fmt_sci(double x, int decimals = 2);

}  // namespace lumen
