// Cache-line-aligned storage and software prefetch for the hot search
// arrays.
//
// The CSR search kernels are memory-bound: the per-node SoA rows
// (distances, heap keys, parents) and the packed head/weight arrays are
// streamed by every relaxation.  Aligning each array to a cache-line
// boundary keeps one logical row from straddling two lines, and explicit
// prefetch hides the latency of the data-dependent loads (head -> scratch
// state) that the hardware prefetcher cannot predict.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace lumen {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal cache-line-aligned allocator (C++17 aligned operator new).
template <class T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() noexcept = default;
  template <class U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <class U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// A std::vector whose storage starts on a cache-line boundary.
template <class T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

/// Read-intent prefetch hint; a no-op on compilers without the builtin.
inline void prefetch_read(const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace lumen
