// Minimal fixed-size worker pool for data-parallel fan-out.
//
// The routing engine's batch API (RouteEngine::route_many) and the
// all-pairs router's parallel tree construction run many independent
// Dijkstras over immutable flattened graphs; this pool supplies the
// workers.  Design goals: no dependencies, bounded threads, exception
// propagation, and a blocking parallel_for that is trivially correct to
// call from otherwise single-threaded code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lumen {

/// Fixed-size worker pool.  Tasks are run in FIFO order; wait() blocks
/// until every submitted task finished.  The destructor waits for the
/// queue to drain, then joins the workers.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = one per hardware thread).
  explicit ThreadPool(unsigned threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task.  Tasks must not submit to the same pool recursively
  /// and must not block on wait() themselves (deadlock).
  void submit(std::function<void()> task);

  /// Blocks until all tasks submitted so far have completed.  Rethrows the
  /// first exception a task raised (the remaining tasks still run).
  void wait();

  /// Runs fn(i) for every i in [0, count) across the pool and blocks until
  /// done.  Work is claimed dynamically (one index at a time), so uneven
  /// item costs balance automatically.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency clamped to >= 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lumen
