#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace lumen {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
  LUMEN_REQUIRE(!sample.empty());
  LUMEN_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double median(std::vector<double> sample) {
  return quantile(std::move(sample), 0.5);
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  LUMEN_REQUIRE(xs.size() == ys.size());
  LUMEN_REQUIRE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (sxx > 0 && syy > 0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace lumen
