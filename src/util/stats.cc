#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace lumen {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Percentiles::Percentiles(std::size_t capacity)
    : capacity_(capacity), rng_state_(0x0b5e41edULL) {
  LUMEN_REQUIRE(capacity > 0);
  reservoir_.reserve(capacity);
}

void Percentiles::add(double x) {
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(x);
    return;
  }
  // Algorithm R: keep the new observation with probability capacity/seen,
  // evicting a uniformly random resident.
  const std::uint64_t slot = splitmix64(rng_state_) % seen_;
  if (slot < capacity_) reservoir_[slot] = x;
}

double Percentiles::percentile(double q) const {
  LUMEN_REQUIRE(seen_ > 0);
  return quantile(reservoir_, q);
}

double quantile(std::vector<double> sample, double q) {
  LUMEN_REQUIRE(!sample.empty());
  LUMEN_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double median(std::vector<double> sample) {
  return quantile(std::move(sample), 0.5);
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  LUMEN_REQUIRE(xs.size() == ys.size());
  LUMEN_REQUIRE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (sxx > 0 && syy > 0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace lumen
