// Small statistics helpers used by benchmarks and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lumen {

/// Point-in-time condensation of a RunningStats accumulator.
struct StatsSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// All of the above in one value (for tables and exporters).
  [[nodiscard]] StatsSummary summary() const noexcept {
    return {count_, mean_, stddev(), min_, max_};
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming percentile estimator with a fixed memory footprint:
/// reservoir sampling (Vitter's algorithm R) over a bounded sample, so an
/// arbitrarily long observation stream yields p50/p90/p99 estimates from
/// O(capacity) memory.  Deterministic for a given insertion order (the
/// internal RNG is fix-seeded).  Companion to RunningStats: keep both
/// when you need mean/stddev *and* tail percentiles.
class Percentiles {
 public:
  explicit Percentiles(std::size_t capacity = 1024);

  /// Adds one observation.
  void add(double x);

  /// Observations offered so far (not the retained sample size).
  [[nodiscard]] std::size_t count() const noexcept { return seen_; }
  /// Observations currently retained (min(count, capacity)).
  [[nodiscard]] std::size_t sample_size() const noexcept {
    return reservoir_.size();
  }

  /// The q-th percentile estimate (0 <= q <= 1), linearly interpolated
  /// over the retained sample.  Requires count() > 0.  Exact while
  /// count() <= capacity; an unbiased sample estimate beyond.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p90() const { return percentile(0.90); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::vector<double> reservoir_;
  std::uint64_t rng_state_;
};

/// The q-th quantile (0 <= q <= 1) of a sample, with linear interpolation.
/// Copies and sorts the input; requires a non-empty sample.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Median shorthand for quantile(sample, 0.5).
[[nodiscard]] double median(std::vector<double> sample);

/// Ordinary least-squares fit of y = a + b*x.  Returns {a, b, r_squared}.
/// Requires xs.size() == ys.size() and at least two points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit fit_line(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

}  // namespace lumen
