// Small statistics helpers used by benchmarks and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace lumen {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The q-th quantile (0 <= q <= 1) of a sample, with linear interpolation.
/// Copies and sorts the input; requires a non-empty sample.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Median shorthand for quantile(sample, 0.5).
[[nodiscard]] double median(std::vector<double> sample);

/// Ordinary least-squares fit of y = a + b*x.  Returns {a, b, r_squared}.
/// Requires xs.size() == ys.size() and at least two points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit fit_line(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

}  // namespace lumen
