// Explicit big-endian (network order) serialization primitives.
//
// The obs wire protocol (src/obs/wire) and any future binary frame
// format write multi-byte integers in network byte order regardless of
// host endianness.  These helpers are the single place that conversion
// happens: ByteWriter appends to a caller-owned buffer, ByteReader
// consumes a read-only view and *never* reads past the end — every
// accessor reports failure through ok() instead of crashing, which is
// what makes the wire decoder safe against truncated or malicious
// frames.  Doubles travel as the big-endian bytes of their IEEE-754
// bit pattern (std::bit_cast, lossless round-trip).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lumen {

/// Appends big-endian scalars to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { be(v); }
  void u32(std::uint32_t v) { be(v); }
  void u64(std::uint64_t v) { be(v); }
  void f64(double v) { be(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::byte> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  /// Length-prefixed string: u16 byte count then the raw bytes.  Strings
  /// longer than 65535 bytes are truncated (wire names never approach it).
  void str(std::string_view s) {
    const std::size_t n = s.size() > 0xFFFF ? 0xFFFF : s.size();
    u16(static_cast<std::uint16_t>(n));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    out_.insert(out_.end(), p, p + n);
  }

  /// Current size of the underlying buffer (for patching length fields).
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  /// Overwrites a previously written u16 at `offset` (length back-patch).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::byte>(v >> 8);
    out_[offset + 1] = static_cast<std::byte>(v & 0xFF);
  }

 private:
  template <class T>
  void be(T v) {
    for (int shift = (sizeof(T) - 1) * 8; shift >= 0; shift -= 8)
      out_.push_back(static_cast<std::byte>((v >> shift) & 0xFF));
  }

  std::vector<std::byte>& out_;
};

/// Consumes big-endian scalars from a byte view; sticky-fails instead of
/// reading out of bounds.  After any failed read, ok() is false and every
/// subsequent accessor returns 0/empty.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(be(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(be(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(be(4)); }
  std::uint64_t u64() { return be(8); }
  double f64() { return std::bit_cast<double>(be(8)); }

  /// Reads a u16-length-prefixed string (see ByteWriter::str).
  std::string str() {
    const std::uint16_t n = u16();
    if (!take(n)) return {};
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_ - n), n);
    return out;
  }

  /// A sub-view of the next `n` bytes (empty + !ok() when short).
  std::span<const std::byte> bytes(std::size_t n) {
    if (!take(n)) return {};
    return data_.subspan(pos_ - n, n);
  }

  /// Skips `n` bytes.
  void skip(std::size_t n) { (void)take(n); }

 private:
  /// Advances past `n` bytes when available; sticky-fails otherwise.
  bool take(std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::uint64_t be(std::size_t n) {
    if (!take(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = pos_ - n; i < pos_; ++i)
      v = (v << 8) | static_cast<std::uint64_t>(data_[i]);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace lumen
