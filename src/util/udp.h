// Minimal loopback UDP datagram socket (POSIX, no dependencies).
//
// The first real-socket egress path in the repo: the obs wire exporter
// sends telemetry frames through it and `lumen_collect` receives them.
// Deliberately loopback-only (127.0.0.1), mirroring the Prometheus
// endpoint's stance — this is telemetry hand-off to a local agent, not a
// public listener.  Construction never throws: a failed socket()/bind()
// leaves the object !ok() and every operation a harmless no-op, so the
// telemetry path degrades instead of taking the process down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace lumen {

class UdpSocket {
 public:
  /// An unbound send-only socket (the exporter side).
  UdpSocket();
  /// Binds 127.0.0.1:`port` for receiving (0 = kernel-assigned ephemeral
  /// port; read it back with port()).
  explicit UdpSocket(std::uint16_t port);
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }
  /// The bound port (0 for unbound/send-only sockets).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Sends one datagram to 127.0.0.1:`port`.  Retries on EINTR; false on
  /// any other error (including !ok()).
  bool send_to(std::uint16_t port, std::span<const std::byte> datagram);

  /// Receives one datagram into `buf`, waiting up to `timeout_seconds`
  /// (<= 0 polls without blocking).  Returns the datagram size, 0 on
  /// timeout, -1 on error.  A datagram larger than `buf` is truncated to
  /// buf.size() (the caller sees the size it got, as recv() reports).
  long recv(std::span<std::byte> buf, double timeout_seconds);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace lumen
