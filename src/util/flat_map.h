// Open-addressing hash map for the hot session/reservation tables.
//
// std::unordered_map pays one allocation per node and a pointer chase per
// probe; the tables on the service hot path (per-shard session tables,
// reservation bookkeeping) are small-keyed, high-churn, and looked up on
// every admit/close, where that indirection dominates.  FlatHashMap keeps
// entries in one contiguous slot array with robin-hood probing (insertions
// displace richer entries, keeping probe sequences short and variance low)
// and backward-shift deletion (no tombstones, so lookup cost never degrades
// as the table churns).
//
// The public surface mirrors the std::unordered_map subset the codebase
// uses — find/emplace/try_emplace/erase/operator[]/contains/iteration — so
// swapping a table is a type-alias change:
//
//   lumen::FlatMap<SessionId, SessionRecord> sessions_;
//
// Differences from std::unordered_map, by design:
//   * References and iterators are invalidated by EVERY insert and erase
//     (entries move during displacement and backward shift), not just by
//     rehash.  Don't hold them across mutations.
//   * value_type is std::pair<Key, T> (non-const Key) so entries can be
//     relocated; treat the key of a live entry as immutable.
//   * Iteration order is the slot order — unspecified, like the standard
//     containers, and additionally changes on rehash.
//
// The user-supplied hash is post-mixed (splitmix64 finalizer), so identity
// hashes over dense integer ids — the common case here — do not cluster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.h"

namespace lumen {

namespace detail {

/// splitmix64 finalizer: spreads dense/low-entropy hashes over the word.
[[nodiscard]] constexpr std::uint64_t mix_hash(std::uint64_t h) noexcept {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace detail

/// Robin-hood flat hash map (see file comment).  Key and T must be
/// movable; the map never copies entries except in its own copy
/// operations.
template <class Key, class T, class Hash = std::hash<Key>,
          class KeyEqual = std::equal_to<Key>>
class FlatHashMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<Key, T>;
  using size_type = std::size_t;

  /// Load factor ceiling in percent (the minicore-style alias fixes 80).
  static constexpr std::size_t kMaxLoadPercent = 80;

  template <bool Const>
  class basic_iterator {
   public:
    using map_type = std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using value_type = FlatHashMap::value_type;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    basic_iterator() = default;
    /// const_iterator from iterator.
    template <bool C = Const, class = std::enable_if_t<C>>
    basic_iterator(const basic_iterator<false>& other) noexcept
        : map_(other.map_), index_(other.index_) {}

    reference operator*() const { return map_->slot(index_); }
    pointer operator->() const { return &map_->slot(index_); }

    basic_iterator& operator++() {
      index_ = map_->next_occupied(index_ + 1);
      return *this;
    }
    basic_iterator operator++(int) {
      basic_iterator copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const basic_iterator& a,
                           const basic_iterator& b) = default;

   private:
    friend class FlatHashMap;
    template <bool>
    friend class basic_iterator;
    basic_iterator(map_type* map, std::size_t index) noexcept
        : map_(map), index_(index) {}

    map_type* map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = basic_iterator<false>;
  using const_iterator = basic_iterator<true>;

  FlatHashMap() = default;
  explicit FlatHashMap(size_type expected) { reserve(expected); }

  FlatHashMap(const FlatHashMap& other) { *this = other; }
  FlatHashMap& operator=(const FlatHashMap& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size());
    for (const value_type& entry : other) emplace(entry.first, entry.second);
    return *this;
  }

  FlatHashMap(FlatHashMap&& other) noexcept { swap(other); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      destroy_all();
      swap(other);
    }
    return *this;
  }

  ~FlatHashMap() { destroy_all(); }

  void swap(FlatHashMap& other) noexcept {
    std::swap(storage_, other.storage_);
    std::swap(probe_, other.probe_);
    std::swap(capacity_, other.capacity_);
    std::swap(size_, other.size_);
  }

  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Current slot-array capacity (size() can grow to 80% of this before
  /// the next rehash).
  [[nodiscard]] size_type capacity() const noexcept { return capacity_; }

  /// Destroys every entry; keeps the slot array.
  void clear() noexcept {
    if (size_ == 0) return;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (probe_[i] != 0) {
        slot(i).~value_type();
        probe_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Grows the slot array so `expected` entries fit without rehashing.
  void reserve(size_type expected) {
    size_type needed = kMinCapacity;
    while (needed * kMaxLoadPercent / 100 < expected) needed *= 2;
    if (needed > capacity_) rehash(needed);
  }

  [[nodiscard]] iterator begin() noexcept {
    return iterator(this, next_occupied(0));
  }
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, next_occupied(0));
  }
  [[nodiscard]] iterator end() noexcept { return iterator(this, capacity_); }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, capacity_);
  }

  [[nodiscard]] iterator find(const Key& key) {
    return iterator(this, find_index(key));
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    return const_iterator(this, find_index(key));
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find_index(key) != capacity_;
  }
  [[nodiscard]] size_type count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  /// std::unordered_map::try_emplace: constructs T from `args` only when
  /// the key is absent.
  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    const std::size_t found = find_index(key);
    if (found != capacity_) return {iterator(this, found), false};
    const std::size_t index =
        insert_new(Key(key), T(std::forward<Args>(args)...));
    return {iterator(this, index), true};
  }

  /// std::unordered_map::emplace for the (key, mapped) argument shape the
  /// codebase uses.  No-op (returns false) when the key exists.
  template <class K, class V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    Key k(std::forward<K>(key));
    const std::size_t found = find_index(k);
    if (found != capacity_) return {iterator(this, found), false};
    const std::size_t index =
        insert_new(std::move(k), T(std::forward<V>(value)));
    return {iterator(this, index), true};
  }

  std::pair<iterator, bool> insert(value_type entry) {
    return emplace(std::move(entry.first), std::move(entry.second));
  }

  /// Erases the entry at `pos`; returns the iterator to the next entry in
  /// iteration order.  (Backward shift may move an entry INTO the erased
  /// slot; that entry has not been visited yet, so re-examining the same
  /// index is the correct continuation.)
  iterator erase(const_iterator pos) {
    LUMEN_REQUIRE(pos.map_ == this && pos.index_ < capacity_ &&
                  probe_[pos.index_] != 0);
    erase_index(pos.index_);
    const std::size_t next =
        probe_[pos.index_] != 0 ? pos.index_ : next_occupied(pos.index_ + 1);
    return iterator(this, next);
  }

  size_type erase(const Key& key) {
    const std::size_t index = find_index(key);
    if (index == capacity_) return 0;
    erase_index(index);
    return 1;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;
  /// Probe distances are stored +1 in a uint16.  Robin-hood bounds the
  /// distance by the longest run of colliding (post-mix) hashes, so
  /// hitting this cap needs ~65k keys with IDENTICAL hash values — a
  /// degenerate hash function, rejected rather than looped on.
  static constexpr std::uint32_t kMaxProbe = 65530;

  [[nodiscard]] value_type& slot(std::size_t i) const {
    return reinterpret_cast<value_type*>(storage_.get())[i];
  }

  [[nodiscard]] std::size_t home_of(const Key& key) const {
    return static_cast<std::size_t>(detail::mix_hash(Hash{}(key))) &
           (capacity_ - 1);
  }

  [[nodiscard]] std::size_t next_occupied(std::size_t i) const noexcept {
    while (i < capacity_ && probe_[i] == 0) ++i;
    return i;
  }

  /// Index of `key`, or capacity_ when absent.
  [[nodiscard]] std::size_t find_index(const Key& key) const {
    if (size_ == 0) return capacity_;
    std::size_t index = home_of(key);
    std::uint32_t distance = 1;
    while (true) {
      const std::uint32_t have = probe_[index];
      // Empty slot, or an entry closer to its home than we would be: a
      // stored copy of `key` would have displaced it, so `key` is absent.
      if (have < distance) return capacity_;
      // Equal keys share a home, hence sit at equal probe distance.
      if (have == distance && KeyEqual{}(slot(index).first, key)) return index;
      index = (index + 1) & (capacity_ - 1);
      ++distance;
    }
  }

  /// Inserts a key known to be absent.  Returns its final slot index.
  std::size_t insert_new(Key key, T value) {
    if (capacity_ == 0 || (size_ + 1) * 100 > capacity_ * kMaxLoadPercent) {
      rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
    }
    return place(std::move(key), std::move(value));
  }

  /// Robin-hood placement of a key not present in the table.  Returns the
  /// slot where the ORIGINAL key landed (a displaced resident may travel
  /// further; once a slot is written it only moves on erase/rehash).
  std::size_t place(Key key, T value) {
    std::size_t index = home_of(key);
    std::uint32_t distance = 1;
    std::size_t landed = capacity_;
    value_type pending(std::move(key), std::move(value));
    while (true) {
      if (probe_[index] == 0) {
        new (&slot(index)) value_type(std::move(pending));
        probe_[index] = static_cast<std::uint16_t>(distance);
        ++size_;
        return landed == capacity_ ? index : landed;
      }
      if (probe_[index] < distance) {
        // The resident is richer (closer to home): displace it, keep
        // probing on its behalf.
        std::swap(pending, slot(index));
        const std::uint32_t resident = probe_[index];
        probe_[index] = static_cast<std::uint16_t>(distance);
        distance = resident;
        if (landed == capacity_) landed = index;
      }
      index = (index + 1) & (capacity_ - 1);
      ++distance;
      LUMEN_REQUIRE_MSG(distance < kMaxProbe,
                        "degenerate hash: probe chain exceeded 65k");
    }
  }

  void erase_index(std::size_t index) {
    slot(index).~value_type();
    probe_[index] = 0;
    --size_;
    // Backward shift: pull every displaced successor one slot closer to
    // its home until the chain ends (empty slot or an entry at home).
    std::size_t hole = index;
    std::size_t next = (hole + 1) & (capacity_ - 1);
    while (probe_[next] > 1) {
      new (&slot(hole)) value_type(std::move(slot(next)));
      slot(next).~value_type();
      probe_[hole] = static_cast<std::uint16_t>(probe_[next] - 1);
      probe_[next] = 0;
      hole = next;
      next = (next + 1) & (capacity_ - 1);
    }
  }

  void rehash(std::size_t new_capacity) {
    LUMEN_ASSERT((new_capacity & (new_capacity - 1)) == 0);
    std::unique_ptr<std::byte[]> old_storage = std::move(storage_);
    std::vector<std::uint16_t> old_probe = std::move(probe_);
    const std::size_t old_capacity = capacity_;

    storage_ =
        std::make_unique<std::byte[]>(new_capacity * sizeof(value_type));
    probe_.assign(new_capacity, 0);
    capacity_ = new_capacity;
    size_ = 0;

    value_type* old_slots = reinterpret_cast<value_type*>(old_storage.get());
    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_probe[i] == 0) continue;
      place(std::move(old_slots[i].first), std::move(old_slots[i].second));
      old_slots[i].~value_type();
    }
  }

  void destroy_all() noexcept {
    clear();
    storage_.reset();
    probe_.clear();
    capacity_ = 0;
  }

  std::unique_ptr<std::byte[]> storage_;
  std::vector<std::uint16_t> probe_;  // 0 = empty, else probe distance + 1
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

/// The hot-table alias (the minicore idiom: name the implementation once,
/// swap it behind the alias if a better map lands).
template <class Key, class T, class Hash = std::hash<Key>,
          class KeyEqual = std::equal_to<Key>>
using FlatMap = FlatHashMap<Key, T, Hash, KeyEqual>;

}  // namespace lumen
