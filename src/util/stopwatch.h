// Wall-clock stopwatch for coarse algorithm timing in benches and examples.
#pragma once

#include <chrono>

namespace lumen {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lumen
