#include "util/rng.h"

#include <unordered_set>

namespace lumen {

std::vector<std::uint32_t> Rng::sample_without_replacement(
    std::uint32_t universe, std::uint32_t count) {
  LUMEN_REQUIRE(count <= universe);
  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (count * 3ULL >= universe) {
    // Dense case: partial Fisher–Yates over the whole universe.
    std::vector<std::uint32_t> all(universe);
    for (std::uint32_t i = 0; i < universe; ++i) all[i] = i;
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto j =
          i + static_cast<std::uint32_t>(next_below(universe - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    // Sparse case: rejection sampling.
    std::unordered_set<std::uint32_t> seen;
    seen.reserve(count * 2);
    while (out.size() < count) {
      const auto x = static_cast<std::uint32_t>(next_below(universe));
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  return out;
}

}  // namespace lumen
