#include "util/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <utility>

namespace lumen {

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpSocket::UdpSocket() { fd_ = ::socket(AF_INET, SOCK_DGRAM, 0); }

UdpSocket::UdpSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

UdpSocket::~UdpSocket() { close(); }

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

bool UdpSocket::send_to(std::uint16_t port,
                        std::span<const std::byte> datagram) {
  if (fd_ < 0) return false;
  const sockaddr_in addr = loopback_addr(port);
  while (true) {
    const ssize_t n =
        ::sendto(fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (n >= 0) return static_cast<std::size_t>(n) == datagram.size();
    if (errno != EINTR) return false;
  }
}

long UdpSocket::recv(std::span<std::byte> buf, double timeout_seconds) {
  if (fd_ < 0) return -1;
  const int timeout_ms =
      timeout_seconds <= 0.0
          ? 0
          : static_cast<int>(std::ceil(timeout_seconds * 1000.0));
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return 0;  // timeout
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno != EINTR) return -1;
  }
}

}  // namespace lumen
