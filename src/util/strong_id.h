// Strongly typed integer identifiers.
//
// Node, link, and wavelength indices are all plain integers at runtime, but
// mixing them up is a classic source of silent bugs in graph code.  StrongId
// wraps a 32-bit index in a distinct type per tag so that the compiler
// rejects cross-assignment (Core Guidelines I.4).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace lumen {

/// A strongly typed, totally ordered 32-bit index.  `Tag` is an empty struct
/// used only to make distinct instantiations incompatible.
template <class Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;

  /// Sentinel meaning "no such entity".
  static constexpr value_type kInvalidValue =
      std::numeric_limits<value_type>::max();

  constexpr StrongId() noexcept : value_(kInvalidValue) {}
  constexpr explicit StrongId(value_type value) noexcept : value_(value) {}

  /// Underlying index value.
  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }

  /// True when this id refers to an actual entity.
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalidValue;
  }

  /// The invalid sentinel id.
  [[nodiscard]] static constexpr StrongId invalid() noexcept {
    return StrongId{};
  }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  value_type value_;
};

struct NodeTag {};
struct LinkTag {};
struct WavelengthTag {};

/// Index of a physical network node.
using NodeId = StrongId<NodeTag>;
/// Index of a directed physical link.
using LinkId = StrongId<LinkTag>;
/// Index of a wavelength (0-based position of lambda_i in the universe).
using Wavelength = StrongId<WavelengthTag>;

}  // namespace lumen

template <class Tag>
struct std::hash<lumen::StrongId<Tag>> {
  std::size_t operator()(lumen::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
