// Deterministic pseudo-random number generation.
//
// Every randomized component in lumen takes an explicit Rng so that tests,
// benchmarks, and examples are reproducible bit-for-bit from a seed.  The
// generator is xoshiro256++ seeded through splitmix64, which is fast,
// high-quality, and trivially portable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace lumen {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ deterministic pseudo-random generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef01ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Requires bound > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    LUMEN_REQUIRE(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased.
    while (true) {
      const std::uint64_t x = (*this)();
      const unsigned __int128 wide =
          static_cast<unsigned __int128>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(wide);
      if (low >= bound || low >= static_cast<std::uint64_t>(-bound) % bound) {
        return static_cast<std::uint64_t>(wide >> 64);
      }
    }
  }

  /// Uniform integer in the closed range [lo, hi].  Requires lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    LUMEN_REQUIRE(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 on full range
    if (span == 0) return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  [[nodiscard]] double next_double_in(double lo, double hi) {
    LUMEN_REQUIRE(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw with success probability p in [0, 1].
  [[nodiscard]] bool next_bool(double p) {
    LUMEN_REQUIRE(p >= 0.0 && p <= 1.0);
    return next_double() < p;
  }

  /// An independent generator derived from this one (for splitting streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

  /// Fisher–Yates shuffle of a vector.
  template <class T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  /// A uniformly random sample of `count` distinct values from [0, universe).
  /// Requires count <= universe.  Output is in selection order (not sorted).
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t universe, std::uint32_t count);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::uint64_t state_[4];
};

}  // namespace lumen
